#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#ifndef NDEBUG
#include <thread>
#endif

#include "src/atpg/excitation.hpp"
#include "src/netlist/dense_view.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sim/sim_word.hpp"
#include "src/sim/simd_dispatch.hpp"
#include "src/util/cancel.hpp"
#include "src/util/rng.hpp"

namespace dfmres {

namespace fsim {
struct KernelOps;
template <class Word>
struct Kernel;
}  // namespace fsim

/// One test: a fully specified assignment per source (PIs and flop
/// outputs) for the initialization frame and the detection frame. In the
/// full-scan model the two frames are independent scan loads.
struct TestPattern {
  std::vector<std::uint8_t> frame0;
  std::vector<std::uint8_t> frame1;

  [[nodiscard]] bool operator==(const TestPattern&) const = default;
};

/// One fully random frame of `n` source bits — THE generator shared by
/// the ATPG engine's phase-1 batches and the baseline builder, so both
/// draw identical patterns from identically seeded rngs.
[[nodiscard]] std::vector<std::uint8_t> random_sim_frame(std::size_t n,
                                                         Rng& rng);

/// One batch of good-machine net values, both frames, laid out per net
/// slot of the view they were simulated over in the W-word SimWord
/// layout: word g of slot n at index n*words + g, lane L of the batch in
/// bit L%64 of word L/64. A batch carries up to 64*words lanes.
struct GoodFrames {
  int lanes = 0;
  int words = 1;  ///< SimWord width the frames were materialized with
  std::vector<std::uint64_t> good0, good1;  ///< net_slots * words each
};

/// Committed-baseline good frames for copy-on-write probe replay: the
/// seed test set simulated once, per lane batch, over the committed
/// design. Speculative probes of candidates derived from that design
/// share these frames read-only and materialize only the slots their
/// edit dirties (see CowPlan / FaultSimulator::load_baseline).
struct SimBaseline {
  std::shared_ptr<const DenseView> view;  ///< the committed design's view
  std::vector<GoodFrames> batches;  ///< seeds packed 64*words per batch
  std::size_t num_patterns = 0;
  std::size_t frame_width = 0;   ///< sources per pattern at build
  std::uint64_t seeds_hash = 0;  ///< digest of the seed patterns
  /// SimWord width of every stored batch. A simulator may only overlay
  /// onto frames whose layout matches its own kernel; the engine falls
  /// back to full loads on mismatch (a mode change between builds).
  int words = 1;

  /// The engine's phase-1 random batches, pre-simulated as well: the
  /// patterns are a pure function of (rng seed, frame width) — phase 0
  /// never draws from the engine rng — so every probe whose diff keeps
  /// the sources intact (a precondition of CowPlan validity anyway)
  /// regenerates exactly these patterns and can overlay these frames.
  /// The engine double-checks by comparing the regenerated patterns to
  /// `random_patterns` before trusting a batch. `random_batch_count` is
  /// the configured number of 64-pattern engine batches; the stored
  /// GoodFrames pack them `words` groups per wide batch.
  std::uint64_t random_seed = 0;
  int random_batch_count = 0;
  std::vector<TestPattern> random_patterns;  ///< 64 per engine batch
  std::vector<GoodFrames> random_batches;

  [[nodiscard]] bool valid() const {
    return view != nullptr && num_patterns > 0;
  }
  void clear() {
    view.reset();
    batches.clear();
    num_patterns = 0;
    frame_width = 0;
    seeds_hash = 0;
    words = 1;
    random_seed = 0;
    random_batch_count = 0;
    random_patterns.clear();
    random_batches.clear();
  }
};

/// Order-sensitive digest of a seed test set; pins a SimBaseline to the
/// exact patterns its frames were simulated from.
[[nodiscard]] std::uint64_t seed_tests_hash(std::span<const TestPattern> seeds);

/// Simulates `seeds` over `nl` once (64*W lanes per batch under the
/// active kernel, both frames) into a shareable baseline.
/// `random_batches` > 0 additionally generates and simulates the
/// engine's deterministic phase-1 batches for `random_seed` (the
/// AtpgOptions seed the probes will run with).
[[nodiscard]] SimBaseline build_sim_baseline(
    const Netlist& nl, std::span<const TestPattern> seeds,
    std::uint64_t random_seed = 0, int random_batches = 0);

/// Re-anchors `base` onto `nl` (the new committed design) for the same
/// seed set: folds the structural diff into the stored frames when the
/// copy-on-write plan allows (O(cone) per batch), otherwise re-simulates
/// from scratch. When `seeds` differs from the set the baseline was
/// built from (hash mismatch), or the random-batch configuration or the
/// active SimWord width changed, the rebuild is always full.
void rebase_sim_baseline(SimBaseline& base, const Netlist& nl,
                         std::span<const TestPattern> seeds,
                         std::uint64_t random_seed = 0,
                         int random_batches = 0);

/// The structural diff of a candidate design against a baseline design,
/// over their DenseViews.
///
/// Two granularities, for two consumers:
///
/// - `seed_gates`/`seed_nets` are just the *edit itself*: gates whose
///   pin rows or cell changed (or are new), and net slots the baseline
///   frames cannot answer for (past their capacity, or newly undriven).
///   Overlay loads start an event-driven re-simulation from these and
///   stop wherever recomputed values equal the baseline frames — for a
///   function-preserving rewrite the wave dies at the region boundary,
///   so the materialized slots are O(edit), not O(fanout cone).
/// - `dirty`/`dirty_nets`/`dirty_gates` are the full forward
///   combinational closure of the seeds — the slots that could
///   *possibly* change. The rebase fold uses these to refresh committed
///   frames in place, and every value the overlay materializes provably
///   lies inside this set.
///
/// Both are purely structural — no functional-equivalence assumption —
/// so replaying them reproduces a full simulation bit for bit: a net
/// outside the closure (or inside it but with equal recomputed values
/// upstream) carries the same value in both designs.
///
/// `valid` is false when the overlay contract does not hold (source
/// vectors differ, or a sequential gate changed) and the caller must
/// fall back to full loads.
struct CowPlan {
  bool valid = false;
  std::vector<std::uint8_t> dirty;        ///< closure, per cand net slot
  std::vector<std::uint32_t> dirty_nets;  ///< slots with dirty == 1
  std::vector<std::uint32_t> dirty_gates; ///< closure gate slots, topo order
  std::vector<std::uint32_t> seed_gates;  ///< edited gate slots, topo order
  std::vector<std::uint32_t> seed_nets;   ///< slots with no baseline value
};

[[nodiscard]] CowPlan build_cow_plan(const DenseView& cand,
                                     const DenseView& base);

/// Multi-word single-fault simulator with event-driven cone propagation:
/// up to 64*W pattern lanes per batch, where W is the SimWord width of
/// the kernel bound at rebind time (resolved from the global SimdMode —
/// scalar uint64, auto-vectorized portable 4/8-word, or AVX2/AVX-512
/// intrinsics; see sim/simd_dispatch). Load a batch of tests, then query
/// detection masks fault by fault (the engine drops detected faults as
/// it goes). Results are bit-identical per 64-lane group for every
/// kernel.
///
/// Good-value frames are bound, not owned: a full `load` simulates into
/// this instance's own frame arrays; `load_from` aliases another
/// instance's bound frames (zero copies); `load_baseline` aliases a
/// SimBaseline batch plus a private overlay holding only the dirty
/// slots. Aliased frames stay valid until their owner's next
/// load/rebind (or destruction) — the engine's master/worker sweep
/// contract (master loads, workers adopt, nobody loads mid-sweep)
/// satisfies this by construction.
///
/// Threading model: `detect_mask` reads the bound good-value frames but
/// mutates the `faulty_`/`stamp_`/`scheduled_` scratch, so a simulator
/// instance must never be shared between threads. Concurrent instances
/// may read the same bound frames (nobody writes them during a sweep).
class FaultSimulator {
 public:
  explicit FaultSimulator(std::shared_ptr<const DenseView> view);
  /// Convenience: builds a private DenseView over (nl, view).
  FaultSimulator(const Netlist& nl, const CombView& view);

  /// Re-targets this simulator at another design, reusing the
  /// already-allocated frame and scratch buffers (they only grow).
  /// Re-resolves the kernel from the global SimdMode and resets lanes,
  /// epochs, stale event/touched scratch, and the per-instance
  /// counters, so a rebound simulator reports counters for the new
  /// binding only.
  void rebind(std::shared_ptr<const DenseView> view);
  void rebind(const Netlist& nl, const CombView& view);

  /// Packs tests[first..first+count) into the lanes (up to
  /// lane_capacity()) and simulates the good machine for both frames in
  /// one fused topological pass (a full O(netlist) materialization).
  void load(std::span<const TestPattern> tests, std::size_t first,
            std::size_t count);

  /// Adopts another simulator's bound batch (frames + lane count)
  /// without copying. Both instances must be bound to the same design
  /// under the same kernel; the adopted frames alias `other`'s and
  /// follow its lifetime rules.
  void load_from(const FaultSimulator& other);

  /// Copy-on-write batch load: binds baseline batch `batch` read-only
  /// and event-drives a re-simulation from `plan.seed_gates` into a
  /// private overlay, cutting off wherever recomputed values equal the
  /// baseline frames — O(values actually changed) materialized frame
  /// bytes instead of O(netlist). `plan` must have been built from this
  /// simulator's view against `base.view`, the baseline's SimWord width
  /// must equal this simulator's, and `plan` is borrowed until the next
  /// load/rebind; `count` must equal the batch's lane count.
  void load_baseline(const SimBaseline& base, const CowPlan& plan,
                     std::size_t batch, std::size_t count);

  /// Same, over the baseline's pre-simulated phase-1 random batch
  /// `batch` (see SimBaseline::random_batches). The caller must have
  /// checked that its regenerated patterns equal the stored ones.
  void load_baseline_random(const SimBaseline& base, const CowPlan& plan,
                            std::size_t batch, std::size_t count);

  /// Per-group lane masks of tests that detect a fault with the given
  /// excitations: out[g] covers lanes [64g, 64g+64) of the batch and is
  /// bit-identical to a scalar-kernel query over those 64 tests alone.
  /// `out` must hold at least groups() words. With an expired cancel
  /// token the query short-circuits to all-zero ("not detected") — only
  /// valid when the caller discards cancelled runs.
  void detect_masks(std::span<const Excitation> excitations,
                    std::uint64_t* out);

  /// Group-0 convenience for 64-lane callers (all existing unit tests,
  /// PODEM's single-test drop sweeps).
  [[nodiscard]] std::uint64_t detect_mask(
      std::span<const Excitation> excitations) {
    std::uint64_t groups[kMaxSimWords] = {};
    detect_masks(excitations, groups);
    return groups[0];
  }

  /// Installs a cooperative cancel token polled at detect_mask entry
  /// (nullptr = never cancelled). Sweep workers inherit it via the
  /// options of the run that acquired them, not via load_from.
  void set_cancel(const CancelToken* cancel) { cancel_ = cancel; }

  [[nodiscard]] int lanes() const { return lanes_; }
  /// Active 64-lane groups in the current batch: ceil(lanes / 64).
  [[nodiscard]] int groups() const { return groups_; }
  /// SimWord width W of the bound kernel (words per net slot).
  [[nodiscard]] int words() const;
  /// Lanes one batch can carry under the bound kernel: 64 * words().
  [[nodiscard]] int lane_capacity() const;
  /// Resolved-mode spelling of the bound kernel ("scalar", "avx2", ...).
  [[nodiscard]] const char* kernel_name() const;
  [[nodiscard]] const DenseView& view() const { return *view_; }
  [[nodiscard]] const std::shared_ptr<const DenseView>& view_ptr() const {
    return view_;
  }

  /// Test frames simulated by `load`/`load_baseline` on this instance
  /// (2 per pattern).
  [[nodiscard]] std::uint64_t patterns_simulated() const {
    return patterns_simulated_;
  }
  /// `detect_mask` queries answered by this instance.
  [[nodiscard]] std::uint64_t detect_mask_calls() const {
    return detect_mask_calls_;
  }
  /// Faulty-value net updates during event-driven propagation (one per
  /// W-word SimWord update, covering all active lane groups at once).
  [[nodiscard]] std::uint64_t propagation_events() const {
    return propagation_events_;
  }
  /// Good-frame bytes written by loads on this instance: 16*W per net
  /// slot for a full load, 16*W per dirty slot for an overlay load,
  /// zero for load_from. The bytes-per-probe number the overlay work is
  /// about.
  [[nodiscard]] std::uint64_t frame_bytes_materialized() const {
    return frame_bytes_materialized_;
  }
  [[nodiscard]] std::uint64_t full_loads() const { return full_loads_; }
  [[nodiscard]] std::uint64_t overlay_loads() const { return overlay_loads_; }
  /// Sum of dirty-slot counts over the overlay loads.
  [[nodiscard]] std::uint64_t overlay_dirty_nets() const {
    return overlay_dirty_nets_;
  }
  /// Wall time spent inside load/load_baseline.
  [[nodiscard]] double load_seconds() const { return load_seconds_; }

 private:
  template <class Word>
  friend struct fsim::Kernel;

  void bind_own_frames();
  /// Sets lanes_/groups_ and materializes the per-group tail masks into
  /// lane_mask_ (full words for complete groups, a low-bit mask for the
  /// tail group, zero beyond groups_).
  void set_lanes(std::size_t count);
  /// Shared body of the two baseline loads: bind `gf` read-only and
  /// materialize the plan's dirty slots into the private overlay.
  void load_overlay_frames(const GoodFrames& gf, const CowPlan& plan,
                           std::size_t count);

  std::shared_ptr<const DenseView> view_;
  /// Bound kernel ops (width + ISA), resolved at rebind.
  const fsim::KernelOps* ops_ = nullptr;
  int lanes_ = 0;
  int groups_ = 0;
  /// Per-group active-lane masks in SimWord layout (kMaxSimWords words;
  /// words past the kernel width stay zero). Loaded as one Word by the
  /// kernels for tail masking and the all-lanes-detected early exit.
  std::uint64_t lane_mask_[kMaxSimWords] = {};
  // Owned frame storage (full loads) and overlay storage (CoW loads),
  // net_slots * words each, slot-major.
  std::vector<std::uint64_t> good0_, good1_;
  std::vector<std::uint64_t> ov0_, ov1_;
  // Source-packing scratch reused across loads (num_sources * words).
  std::vector<std::uint64_t> src0_, src1_;
  // Active bindings: base frames, overlay frames, dirty flags
  // (dirty_ == nullptr means full mode — no overlay indirection).
  const std::uint64_t* g0_ = nullptr;
  const std::uint64_t* g1_ = nullptr;
  const std::uint64_t* o0_ = nullptr;
  const std::uint64_t* o1_ = nullptr;
  const std::uint8_t* dirty_ = nullptr;
  // Per-batch dynamic dirty set of the current overlay load (the slots
  // whose recomputed values actually differ from the baseline frames);
  // the list undoes the flags on the next load without an O(netlist)
  // clear. dirty_ points at ov_dirty_ in overlay mode.
  std::vector<std::uint8_t> ov_dirty_;
  std::vector<std::uint32_t> ov_dirty_list_;
  // Copy-on-write faulty values (net_slots * words) with per-slot epoch
  // stamps (avoids clearing).
  std::vector<std::uint64_t> faulty_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  // Gate slot scratch; uint8_t instead of vector<bool> because the
  // bit-proxy read-modify-write sits on the event-propagation hot path.
  std::vector<std::uint8_t> scheduled_;
  // Per-excitation event scratch reused across detect_mask calls,
  // structure-of-arrays: the pending-event min-heap keeps topo positions
  // and gate slots in parallel arrays (the heap sifts touch only the
  // position lane; the gate ids ride along), and the nets whose faulty
  // value was stamped this epoch live in touched_nets_ (the only nets
  // that can disagree with the good machine at an observation point).
  std::vector<std::uint32_t> event_pos_;
  std::vector<std::uint32_t> event_gate_;
  std::vector<std::uint32_t> touched_gates_;
  std::vector<std::uint32_t> touched_nets_;
  std::uint64_t patterns_simulated_ = 0;
  std::uint64_t detect_mask_calls_ = 0;
  std::uint64_t propagation_events_ = 0;
  std::uint64_t frame_bytes_materialized_ = 0;
  std::uint64_t full_loads_ = 0;
  std::uint64_t overlay_loads_ = 0;
  std::uint64_t overlay_dirty_nets_ = 0;
  double load_seconds_ = 0.0;
  const CancelToken* cancel_ = nullptr;
};

/// Pool of reusable FaultSimulator instances, one per engine lane
/// (slot 0 = master, slots 1..N = parallel sweep workers). A DesignFlow
/// keeps one arena alive across `run_atpg` calls so the inner loop of
/// resynthesis stops paying a fresh round of frame/scratch allocations
/// per candidate evaluation. All slots of one run share the run's
/// DenseView (built once by the engine).
///
/// Not thread-safe: acquire all slots serially on the run's calling
/// thread (before fanning out) and hand each worker its own
/// `FaultSimulator&`. Debug builds assert the contract: worker slots
/// must be acquired from the same thread that last acquired slot 0.
class FaultSimArena {
 public:
  /// Returns the simulator in slot `index` rebound to `view`, creating
  /// it on first use. Rebinding resets counters and all batch/event
  /// scratch, so a slot reused across differently-sized designs carries
  /// nothing over.
  FaultSimulator& acquire(std::size_t index,
                          std::shared_ptr<const DenseView> view);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

 private:
  std::vector<std::unique_ptr<FaultSimulator>> slots_;
#ifndef NDEBUG
  std::thread::id owner_{};
#endif
};

}  // namespace dfmres
