#include "src/atpg/excitation.hpp"

namespace dfmres {

std::vector<Excitation> build_excitations(const Fault& fault,
                                          const Netlist& nl,
                                          const UdfmMap& udfm) {
  std::vector<Excitation> out;
  switch (fault.kind) {
    case FaultKind::StuckAt: {
      Excitation e;
      e.victim = fault.victim;
      e.faulty_value = fault.value;
      out.push_back(std::move(e));
      break;
    }
    case FaultKind::Transition: {
      // Slow-to-leave-`value`: the net held `value` in the previous
      // pattern and behaves as stuck-at `value` in the detection frame.
      Excitation e;
      e.victim = fault.victim;
      e.faulty_value = fault.value;
      e.lits.push_back({fault.victim, fault.value, 0});
      out.push_back(std::move(e));
      break;
    }
    case FaultKind::Bridge: {
      Excitation e;
      e.victim = fault.victim;
      const bool dominant = fault.bridge_type == BridgeType::DomOr;
      e.faulty_value = dominant;  // wired-OR pulls 1, wired-AND pulls 0
      e.lits.push_back({fault.aggressor, dominant, 1});
      out.push_back(std::move(e));
      break;
    }
    case FaultKind::CellAware: {
      const auto& gate = nl.gate(fault.owner);
      const CellUdfm& cu = udfm.of(gate.cell);
      const CellInternalFault& cif = cu.faults[fault.udfm_index];
      for (const UdfmPattern& pat : cif.patterns) {
        Excitation e;
        e.victim = gate.outputs[pat.output];
        e.faulty_value = pat.faulty_value;
        for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
          e.lits.push_back(
              {gate.fanin[pin], ((pat.inputs >> pin) & 1u) != 0, 1});
        }
        if (pat.has_prev) {
          for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
            e.lits.push_back(
                {gate.fanin[pin], ((pat.prev_inputs >> pin) & 1u) != 0, 0});
          }
        }
        out.push_back(std::move(e));
      }
      break;
    }
  }
  return out;
}

}  // namespace dfmres
