#pragma once

#include <vector>

#include "src/faults/fault.hpp"
#include "src/faults/udfm_map.hpp"
#include "src/netlist/netlist.hpp"

namespace dfmres {

/// One condition literal of a fault excitation. Frame 1 is the detection
/// frame; frame 0 is the preceding scan pattern (transition faults and
/// two-pattern cell-aware entries). The two frames are justified
/// independently (launch-on-shift full-scan model; see DESIGN.md).
struct CondLiteral {
  NetId net;
  bool value = false;
  std::uint8_t frame = 1;
};

/// One way to excite a fault: when every literal holds, `victim` takes
/// `faulty_value` instead of its good value. Detection = justify all
/// frame-1 literals, have the victim's good value be the complement, and
/// propagate the flip to an observation point; frame-0 literals need a
/// separate justification.
struct Excitation {
  std::vector<CondLiteral> lits;
  NetId victim;
  bool faulty_value = false;
};

/// All alternative excitations of a fault (UDFM faults have one per
/// detecting cell pattern; the others have exactly one).
[[nodiscard]] std::vector<Excitation> build_excitations(const Fault& fault,
                                                        const Netlist& nl,
                                                        const UdfmMap& udfm);

}  // namespace dfmres
