#pragma once

// Width-generic implementation of the fault-simulation hot paths,
// instantiated once per SimWord type in the ISA-flagged kernel
// translation units (see fault_sim_kernel.hpp for the registry). The
// logic is a lane-for-lane widening of the historical 64-lane kernel:
// every operation is bitwise and lane-local, and event scheduling fires
// on whole-Word inequality, so the wide event wave is the union of the
// per-64-lane-group scalar waves and each group's stamped values match
// a scalar run over that group's patterns exactly. That is the
// bit-identity contract tests/simd_kernel_test.cpp sweeps.
//
// Only fault_sim_kernel_*.cpp may include this header: Kernel<Word> is
// a friend of FaultSimulator and reaches straight into the frame and
// scratch members.

#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/atpg/fault_sim.hpp"
#include "src/atpg/fault_sim_kernel.hpp"
#include "src/netlist/dense_view.hpp"
#include "src/sim/eval_kernel.hpp"
#include "src/sim/sim_word.hpp"

namespace dfmres::fsim {

template <class Word>
struct Kernel {
  static constexpr int W = Word::kWords;

  // ---- frame accessors (overlay indirection) ----
  // In full mode dirty_ is null and values come straight from the bound
  // frames; in overlay mode a marked slot reads its materialized words.

  static Word g0(const FaultSimulator& s, std::uint32_t n) {
    const std::uint64_t* f =
        (s.dirty_ != nullptr && s.dirty_[n]) ? s.o0_ : s.g0_;
    return Word::load(f + static_cast<std::size_t>(n) * W);
  }
  static Word g1(const FaultSimulator& s, std::uint32_t n) {
    const std::uint64_t* f =
        (s.dirty_ != nullptr && s.dirty_[n]) ? s.o1_ : s.g1_;
    return Word::load(f + static_cast<std::size_t>(n) * W);
  }

  // ---- SoA event heap ----
  // Min-heap on topological position with the gate slot riding along in
  // a parallel array: the sift compares touch only the position lane.
  // Topo positions are unique per gate, so the pop order is exactly the
  // old pair-heap's order.

  static void push_event(std::vector<std::uint32_t>& pos,
                         std::vector<std::uint32_t>& gate, std::uint32_t p,
                         std::uint32_t g) {
    pos.push_back(p);
    gate.push_back(g);
    std::size_t i = pos.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (pos[parent] <= pos[i]) break;
      std::swap(pos[parent], pos[i]);
      std::swap(gate[parent], gate[i]);
      i = parent;
    }
  }

  static std::uint32_t pop_event(std::vector<std::uint32_t>& pos,
                                 std::vector<std::uint32_t>& gate) {
    const std::uint32_t top = gate[0];
    pos[0] = pos.back();
    gate[0] = gate.back();
    pos.pop_back();
    gate.pop_back();
    const std::size_t n = pos.size();
    std::size_t i = 0;
    while (true) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t m = i;
      if (l < n && pos[l] < pos[m]) m = l;
      if (r < n && pos[r] < pos[m]) m = r;
      if (m == i) break;
      std::swap(pos[m], pos[i]);
      std::swap(gate[m], gate[i]);
      i = m;
    }
    return top;
  }

  // ---- good-machine evaluation ----

  /// Packs tests[first..first+lanes) into per-source W-word lane
  /// vectors: lane L lands in bit L%64 of word s*W + L/64.
  static void pack_sources(const DenseView& v,
                           std::span<const TestPattern> tests,
                           std::size_t first, int lanes,
                           std::vector<std::uint64_t>& src0,
                           std::vector<std::uint64_t>& src1) {
    const std::size_t num_sources = v.sources.size();
    src0.assign(num_sources * W, 0);
    src1.assign(num_sources * W, 0);
    for (int lane = 0; lane < lanes; ++lane) {
      const TestPattern& t = tests[first + static_cast<std::size_t>(lane)];
      const std::size_t g = static_cast<std::size_t>(lane) >> 6;
      const std::uint64_t bit = std::uint64_t{1} << (lane & 63);
      for (std::size_t s = 0; s < num_sources; ++s) {
        if (t.frame0[s]) src0[s * W + g] |= bit;
        if (t.frame1[s]) src1[s * W + g] |= bit;
      }
    }
  }

  /// Full good-machine evaluation of BOTH frames in one fused
  /// topological pass: the CSR rows and cell metadata stream through
  /// the cache once and serve 2*W*64 pattern lanes in lock-step (the
  /// cache-blocked wave — blocking over patterns, not gates, because
  /// the traversal itself is already a single linear sweep of the SoA
  /// arrays). Slots never written (dead or undriven nets) keep their
  /// prior contents, so callers zero-fill once at rebind.
  static void eval_frames_fused(const DenseView& v, const std::uint64_t* src0,
                                const std::uint64_t* src1, std::uint64_t* f0,
                                std::uint64_t* f1) {
    for (std::size_t s = 0; s < v.sources.size(); ++s) {
      const std::size_t slot = static_cast<std::size_t>(v.sources[s]) * W;
      for (int i = 0; i < W; ++i) {
        f0[slot + i] = src0[s * W + i];
        f1[slot + i] = src1[s * W + i];
      }
    }
    Word in0[kMaxCellInputs], in1[kMaxCellInputs];
    for (std::uint32_t gs : v.order) {
      const CellSpec& cell = *v.cell[gs];
      const std::uint32_t fb = v.fanin_offset[gs];
      const std::size_t nin = v.fanin_offset[gs + 1] - fb;
      for (std::size_t i = 0; i < nin; ++i) {
        const std::size_t slot =
            static_cast<std::size_t>(v.fanin_net[fb + i]) * W;
        in0[i] = Word::load(f0 + slot);
        in1[i] = Word::load(f1 + slot);
      }
      const std::uint32_t ob = v.output_offset[gs];
      for (int k = 0; k < cell.num_outputs; ++k) {
        const std::size_t slot =
            static_cast<std::size_t>(
                v.output_net[ob + static_cast<std::uint32_t>(k)]) *
            W;
        eval_cell_word(cell, k, in0, nin).store(f0 + slot);
        eval_cell_word(cell, k, in1, nin).store(f1 + slot);
      }
    }
  }

  // ---- KernelOps entry points ----

  static void load(FaultSimulator& s, std::span<const TestPattern> tests,
                   std::size_t first, std::size_t count) {
    pack_sources(*s.view_, tests, first, s.lanes_, s.src0_, s.src1_);
    eval_frames_fused(*s.view_, s.src0_.data(), s.src1_.data(),
                      s.good0_.data(), s.good1_.data());
    s.bind_own_frames();
    (void)count;
  }

  static void load_overlay(FaultSimulator& s, const GoodFrames& gf,
                           const CowPlan& plan, std::size_t count) {
    const DenseView& v = *s.view_;
    assert(gf.lanes == s.lanes_ && gf.words == W);
    assert(plan.valid && plan.dirty.size() == v.net_slots);
    s.g0_ = gf.good0.data();
    s.g1_ = gf.good1.data();
    s.o0_ = s.ov0_.data();
    s.o1_ = s.ov1_.data();
    // Undo the previous batch's marks instead of clearing O(netlist).
    for (std::uint32_t n : s.ov_dirty_list_) s.ov_dirty_[n] = 0;
    s.ov_dirty_list_.clear();
    s.dirty_ = s.ov_dirty_.data();

    // Event-driven replay with value cutoff: re-evaluate the edited
    // gates, record an output slot only when its recomputed Word
    // differs from the baseline frames, and wake a reader only for
    // recorded slots. For a function-preserving rewrite the wave dies
    // at the region boundary, so the materialized slots track the edit,
    // not its structural fanout cone. Soundness: a non-seed gate has
    // identical pin rows in both designs, so if its input slots carry
    // the baseline values its stored outputs are already correct.
    const auto mark = [&](std::uint32_t n, Word w0, Word w1) {
      if (!s.ov_dirty_[n]) {
        s.ov_dirty_[n] = 1;
        s.ov_dirty_list_.push_back(n);
      }
      w0.store(s.ov0_.data() + static_cast<std::size_t>(n) * W);
      w1.store(s.ov1_.data() + static_cast<std::size_t>(n) * W);
    };
    s.event_pos_.clear();
    s.event_gate_.clear();
    s.touched_gates_.clear();
    const auto schedule = [&](std::uint32_t gs) {
      if (!s.scheduled_[gs]) {
        s.scheduled_[gs] = 1;
        s.touched_gates_.push_back(gs);
        push_event(s.event_pos_, s.event_gate_, v.topo_pos[gs], gs);
      }
    };
    // Slots the baseline frames cannot answer for start at 0 — the
    // value a full load leaves in slots nothing writes — and wake their
    // readers; a live driver (always a seed gate) overwrites them below.
    for (std::uint32_t n : plan.seed_nets) {
      mark(n, Word::zero(), Word::zero());
      for (std::uint32_t i = v.fanout_offset[n]; i < v.fanout_offset[n + 1];
           ++i) {
        schedule(v.fanout_gate[i]);
      }
    }
    for (std::uint32_t gs : plan.seed_gates) schedule(gs);
    Word in0[kMaxCellInputs], in1[kMaxCellInputs];
    while (!s.event_pos_.empty()) {
      const std::uint32_t gs = pop_event(s.event_pos_, s.event_gate_);
      const CellSpec& cell = *v.cell[gs];
      const std::uint32_t fb = v.fanin_offset[gs];
      const std::size_t nin = v.fanin_offset[gs + 1] - fb;
      for (std::size_t i = 0; i < nin; ++i) {
        const std::uint32_t n = v.fanin_net[fb + i];
        in0[i] = g0(s, n);
        in1[i] = g1(s, n);
      }
      const std::uint32_t ob = v.output_offset[gs];
      for (int k = 0; k < cell.num_outputs; ++k) {
        const std::uint32_t out =
            v.output_net[ob + static_cast<std::uint32_t>(k)];
        const Word w0 = eval_cell_word(cell, k, in0, nin);
        const Word w1 = eval_cell_word(cell, k, in1, nin);
        const std::size_t slot = static_cast<std::size_t>(out) * W;
        if (s.ov_dirty_[out]) {
          // Preset slot (no baseline value): store unconditionally; its
          // readers were woken when it was preset.
          w0.store(s.ov0_.data() + slot);
          w1.store(s.ov1_.data() + slot);
        } else if (!(w0 == Word::load(s.g0_ + slot) &&
                     w1 == Word::load(s.g1_ + slot))) {
          mark(out, w0, w1);
          for (std::uint32_t i = v.fanout_offset[out];
               i < v.fanout_offset[out + 1]; ++i) {
            schedule(v.fanout_gate[i]);
          }
        }
        // else: bit-identical to the baseline — the wave stops here.
      }
    }
    // Scheduled flags persist across the pop (each gate runs once);
    // reset them for the detect queries that share the scratch.
    for (std::uint32_t gs : s.touched_gates_) s.scheduled_[gs] = 0;
    s.touched_gates_.clear();
    (void)count;
  }

  static void detect(FaultSimulator& s,
                     std::span<const Excitation> excitations,
                     std::uint64_t* out) {
    for (int g = 0; g < s.groups_; ++g) out[g] = 0;
    if (cancel_expired(s.cancel_)) return;
    ++s.detect_mask_calls_;
    const DenseView& v = *s.view_;
    const Word lane_mask = Word::load(s.lane_mask_);
    Word detected = Word::zero();

    for (const Excitation& exc : excitations) {
      // Lanes where every condition literal holds and the victim's good
      // value opposes the forced value.
      Word e = lane_mask;
      for (const CondLiteral& lit : exc.lits) {
        const Word val =
            lit.frame == 0 ? g0(s, lit.net.value()) : g1(s, lit.net.value());
        e = lit.value ? (e & val) : e.andnot(val);
        if (e.none()) break;
      }
      if (e.none()) continue;
      const std::uint32_t victim = exc.victim.value();
      const Word victim_good = g1(s, victim);
      e = exc.faulty_value ? e.andnot(victim_good) : (e & victim_good);
      if (e.none()) continue;

      // Event-driven forward propagation of the flip (frame 1 only).
      if (s.epoch_ == std::numeric_limits<std::uint32_t>::max()) {
        // Epoch wraparound: a stale stamp equal to the restarted epoch
        // would silently resurrect old faulty values, so clear the
        // stamps before reusing epoch numbers.
        std::fill(s.stamp_.begin(), s.stamp_.end(), 0);
        s.epoch_ = 0;
      }
      ++s.epoch_;
      const auto fv_of = [&](std::uint32_t n) {
        return s.stamp_[n] == s.epoch_
                   ? Word::load(s.faulty_.data() +
                                static_cast<std::size_t>(n) * W)
                   : g1(s, n);
      };
      const auto set_fv = [&](std::uint32_t n, Word val) {
        val.store(s.faulty_.data() + static_cast<std::size_t>(n) * W);
        s.stamp_[n] = s.epoch_;
        s.touched_nets_.push_back(n);
        ++s.propagation_events_;
      };
      s.touched_nets_.clear();
      set_fv(victim, victim_good.andnot(e) |
                         (exc.faulty_value ? e : Word::zero()));

      // SoA min-heap of gates by topological position (reused buffers).
      // Sinks come from the view's combinational fanout CSR, which
      // already excludes sequential gates.
      s.event_pos_.clear();
      s.event_gate_.clear();
      s.touched_gates_.clear();
      const auto schedule_sinks = [&](std::uint32_t n) {
        for (std::uint32_t i = v.fanout_offset[n]; i < v.fanout_offset[n + 1];
             ++i) {
          const std::uint32_t gs = v.fanout_gate[i];
          if (!s.scheduled_[gs]) {
            s.scheduled_[gs] = 1;
            s.touched_gates_.push_back(gs);
            push_event(s.event_pos_, s.event_gate_, v.topo_pos[gs], gs);
          }
        }
      };
      schedule_sinks(victim);
      Word ins[kMaxCellInputs];
      while (!s.event_pos_.empty()) {
        const std::uint32_t gs = pop_event(s.event_pos_, s.event_gate_);
        const CellSpec& cell = *v.cell[gs];
        const std::uint32_t fb = v.fanin_offset[gs];
        const std::size_t nin = v.fanin_offset[gs + 1] - fb;
        for (std::size_t i = 0; i < nin; ++i) {
          ins[i] = fv_of(v.fanin_net[fb + i]);
        }
        const std::uint32_t ob = v.output_offset[gs];
        for (int k = 0; k < cell.num_outputs; ++k) {
          const std::uint32_t outn =
              v.output_net[ob + static_cast<std::uint32_t>(k)];
          const Word nv = eval_cell_word(cell, k, ins, nin);
          if (!(nv == fv_of(outn))) {
            set_fv(outn, nv);
            schedule_sinks(outn);
          }
        }
      }
      for (std::uint32_t gs : s.touched_gates_) s.scheduled_[gs] = 0;

      // Detection at observation points: only nets stamped this epoch
      // can disagree with the good machine, so scan the touched set
      // instead of every observation point.
      for (std::uint32_t ns : s.touched_nets_) {
        if (v.observe_flag[ns]) {
          const Word fv = Word::load(s.faulty_.data() +
                                     static_cast<std::size_t>(ns) * W);
          detected = detected | ((fv ^ g1(s, ns)) & e);
        }
      }
      // The victim itself may be observed directly.
      if (v.is_primary_output[victim]) {
        detected = detected | ((fv_of(victim) ^ victim_good) & e);
      }
      // All active lanes of every group detected: later excitations
      // cannot add bits in any group, exactly like the scalar early
      // exit (a full group stays full, so per-group results agree even
      // though the scalar kernel may stop after fewer excitations).
      if (detected == lane_mask) break;
    }
    detected = detected & lane_mask;
    std::uint64_t tmp[kMaxSimWords];
    detected.store(tmp);
    for (int g = 0; g < s.groups_; ++g) out[g] = tmp[g];
  }

  static void simulate_batch(const DenseView& dv,
                             std::span<const TestPattern> patterns,
                             std::size_t first, int lanes, GoodFrames* out,
                             std::vector<std::uint64_t>& src0,
                             std::vector<std::uint64_t>& src1) {
    out->lanes = lanes;
    out->words = W;
    out->good0.assign(static_cast<std::size_t>(dv.net_slots) * W, 0);
    out->good1.assign(static_cast<std::size_t>(dv.net_slots) * W, 0);
    pack_sources(dv, patterns, first, lanes, src0, src1);
    eval_frames_fused(dv, src0.data(), src1.data(), out->good0.data(),
                      out->good1.data());
  }

  /// Recomputes exactly the plan's dirty slots in place over full frame
  /// arrays (the rebase fold): zero the dirty slots, then evaluate the
  /// dirty gates in topological order. Clean inputs already hold
  /// correct values; dirty inputs were either written by an earlier
  /// dirty gate or are undriven and stay zero — the same contract a
  /// full load leaves behind.
  static void refresh_dirty(const DenseView& v, const CowPlan& plan,
                            std::uint64_t* f0, std::uint64_t* f1) {
    for (std::uint32_t n : plan.dirty_nets) {
      const std::size_t slot = static_cast<std::size_t>(n) * W;
      for (int i = 0; i < W; ++i) {
        f0[slot + i] = 0;
        f1[slot + i] = 0;
      }
    }
    Word in0[kMaxCellInputs], in1[kMaxCellInputs];
    for (std::uint32_t gs : plan.dirty_gates) {
      const CellSpec& cell = *v.cell[gs];
      const std::uint32_t fb = v.fanin_offset[gs];
      const std::size_t nin = v.fanin_offset[gs + 1] - fb;
      for (std::size_t i = 0; i < nin; ++i) {
        const std::size_t slot =
            static_cast<std::size_t>(v.fanin_net[fb + i]) * W;
        in0[i] = Word::load(f0 + slot);
        in1[i] = Word::load(f1 + slot);
      }
      const std::uint32_t ob = v.output_offset[gs];
      for (int k = 0; k < cell.num_outputs; ++k) {
        const std::size_t slot =
            static_cast<std::size_t>(
                v.output_net[ob + static_cast<std::uint32_t>(k)]) *
            W;
        eval_cell_word(cell, k, in0, nin).store(f0 + slot);
        eval_cell_word(cell, k, in1, nin).store(f1 + slot);
      }
    }
  }
};

/// Builds the ops table of one kernel instantiation; `name` is the
/// resolved-mode spelling the binding reports.
template <class Word>
[[nodiscard]] inline KernelOps make_kernel_ops(const char* name) {
  KernelOps ops;
  ops.name = name;
  ops.words = Word::kWords;
  ops.load = &Kernel<Word>::load;
  ops.load_overlay = &Kernel<Word>::load_overlay;
  ops.detect = &Kernel<Word>::detect;
  ops.simulate_batch = &Kernel<Word>::simulate_batch;
  ops.refresh_dirty = &Kernel<Word>::refresh_dirty;
  return ops;
}

}  // namespace dfmres::fsim
