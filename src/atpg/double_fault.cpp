#include "src/atpg/double_fault.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/sim/parallel_sim.hpp"

#include "src/util/rng.hpp"

namespace dfmres {

namespace {

/// Lane mask where a pair of faults, both present, is detected.
/// Propagation reuses the single-fault simulator by injecting the second
/// victim's forced value as an extra excitation alternative is NOT sound;
/// instead we run a tiny dedicated two-victim forward pass here.
class PairSimulator {
 public:
  PairSimulator(const Netlist& nl, const CombView& view)
      : nl_(nl), view_(view), faulty_(view.net_slots), stamp_(view.net_slots, 0),
        scheduled_(nl.gate_capacity(), false), topo_pos_(nl.gate_capacity(), 0),
        good0_(view.net_slots), good1_(view.net_slots) {
    for (std::uint32_t i = 0; i < view.order.size(); ++i) {
      topo_pos_[view.order[i].value()] = i;
    }
  }

  void load(std::span<const TestPattern> tests, std::size_t first,
            std::size_t count) {
    lanes_ = static_cast<int>(std::min<std::size_t>(count, 64));
    const std::size_t num_sources = view_.sources.size();
    const auto run = [&](bool frame1, std::vector<std::uint64_t>& out) {
      for (std::size_t s = 0; s < num_sources; ++s) {
        std::uint64_t w = 0;
        for (int lane = 0; lane < lanes_; ++lane) {
          const TestPattern& t = tests[first + lane];
          if ((frame1 ? t.frame1 : t.frame0)[s]) w |= std::uint64_t{1} << lane;
        }
        out[view_.sources[s].value()] = w;
      }
      std::uint64_t ins[kMaxCellInputs];
      for (GateId g : view_.order) {
        const auto& gate = nl_.gate(g);
        const CellSpec& cell = nl_.cell_of(g);
        for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
          ins[i] = out[gate.fanin[i].value()];
        }
        for (int k = 0; k < cell.num_outputs; ++k) {
          out[gate.outputs[static_cast<std::size_t>(k)].value()] =
              ParallelSimulator::eval_cell(cell, k, {ins, gate.fanin.size()});
        }
      }
    };
    run(false, good0_);
    run(true, good1_);
  }

  /// Lanes where an excitation's condition cube holds. Unlike single-
  /// fault detection, the victim's good value is NOT required to oppose
  /// the forced value: the defect is physically present either way, and
  /// a forced-equal victim simply contributes no local difference.
  std::uint64_t condition_lanes(const Excitation& exc) const {
    std::uint64_t e = lanes_ == 64 ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << lanes_) - 1);
    for (const CondLiteral& lit : exc.lits) {
      const std::uint64_t v =
          (lit.frame == 0 ? good0_ : good1_)[lit.net.value()];
      e &= lit.value ? v : ~v;
      if (e == 0) return 0;
    }
    return e;
  }

  /// Detection lanes with BOTH faults injected at once.
  std::uint64_t detect_pair(const Excitation& a, std::uint64_t ea,
                            const Excitation& b, std::uint64_t eb) {
    ++epoch_;
    const auto fv_of = [&](NetId n) {
      return stamp_[n.value()] == epoch_ ? faulty_[n.value()]
                                         : good1_[n.value()];
    };
    const auto set_fv = [&](NetId n, std::uint64_t v) {
      faulty_[n.value()] = v;
      stamp_[n.value()] = epoch_;
    };
    const auto inject = [&](const Excitation& exc, std::uint64_t e) {
      const std::uint64_t cur = fv_of(exc.victim);
      set_fv(exc.victim,
             (cur & ~e) | (exc.faulty_value ? e : std::uint64_t{0}));
    };
    inject(a, ea);
    inject(b, eb);

    std::priority_queue<std::pair<std::uint32_t, std::uint32_t>,
                        std::vector<std::pair<std::uint32_t, std::uint32_t>>,
                        std::greater<>>
        queue;
    std::vector<std::uint32_t> touched;
    const auto schedule = [&](NetId n) {
      for (const PinRef& sink : nl_.net(n).sinks) {
        if (nl_.cell_of(sink.gate).sequential) continue;
        const std::uint32_t gs = sink.gate.value();
        if (!scheduled_[gs]) {
          scheduled_[gs] = true;
          touched.push_back(gs);
          queue.emplace(topo_pos_[gs], gs);
        }
      }
    };
    schedule(a.victim);
    schedule(b.victim);
    const auto reinject = [&](NetId out, std::uint64_t value) {
      // Keep the victims forced where excited even inside the cone.
      if (out == a.victim) {
        value = (value & ~ea) | (a.faulty_value ? ea : std::uint64_t{0});
      }
      if (out == b.victim) {
        value = (value & ~eb) | (b.faulty_value ? eb : std::uint64_t{0});
      }
      return value;
    };
    while (!queue.empty()) {
      const auto [pos, gs] = queue.top();
      queue.pop();
      const GateId g{gs};
      const auto& gate = nl_.gate(g);
      const CellSpec& cell = nl_.cell_of(g);
      std::uint64_t ins[kMaxCellInputs];
      for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
        ins[i] = fv_of(gate.fanin[i]);
      }
      for (int k = 0; k < cell.num_outputs; ++k) {
        const NetId out = gate.outputs[static_cast<std::size_t>(k)];
        const std::uint64_t nv = reinject(
            out,
            ParallelSimulator::eval_cell(cell, k, {ins, gate.fanin.size()}));
        if (nv != fv_of(out)) {
          set_fv(out, nv);
          schedule(out);
        }
      }
    }
    for (std::uint32_t gs : touched) scheduled_[gs] = false;

    std::uint64_t detected = 0;
    for (NetId obs : view_.observe) {
      if (stamp_[obs.value()] == epoch_) {
        detected |= faulty_[obs.value()] ^ good1_[obs.value()];
      }
    }
    for (const Excitation* exc : {&a, &b}) {
      if (nl_.net(exc->victim).is_primary_output) {
        detected |= fv_of(exc->victim) ^ good1_[exc->victim.value()];
      }
    }
    return detected & (ea | eb);
  }

 private:
  const Netlist& nl_;
  const CombView& view_;
  int lanes_ = 0;
  std::vector<std::uint64_t> faulty_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<bool> scheduled_;
  std::vector<std::uint32_t> topo_pos_;
  std::vector<std::uint64_t> good0_, good1_;
};

std::uint64_t pair_detect_mask(PairSimulator& sim,
                               std::span<const Excitation> a,
                               std::span<const Excitation> b) {
  std::uint64_t detected = 0;
  if (a.empty() || b.empty()) {
    // A cell-level-undetectable partner never activates; the double
    // fault behaves like the other fault alone.
    const std::span<const Excitation> active = a.empty() ? b : a;
    for (const Excitation& e : active) {
      const std::uint64_t le = sim.condition_lanes(e);
      if (le != 0) detected |= sim.detect_pair(e, le, e, 0);
    }
    return detected;
  }
  for (const Excitation& ea : a) {
    const std::uint64_t la = sim.condition_lanes(ea);
    if (la == 0) continue;
    for (const Excitation& eb : b) {
      const std::uint64_t lb = sim.condition_lanes(eb);
      // Both defects are present; each is injected wherever its own
      // condition holds, and any resulting output difference counts.
      if ((la | lb) == 0) continue;
      detected |= sim.detect_pair(ea, la, eb, lb);
    }
  }
  return detected;
}

}  // namespace

std::vector<DoubleFaultTarget> enumerate_double_faults(
    const Netlist& nl, const FaultUniverse& universe,
    std::span<const FaultStatus> status, std::size_t max_per_fault) {
  // Per-gate lists of detectable faults.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> det_by_gate;
  for (std::uint32_t i = 0; i < universe.size(); ++i) {
    if (status[i] != FaultStatus::Detected) continue;
    for (GateId g : corresponding_gates(universe.faults[i], nl)) {
      det_by_gate[g.value()].push_back(i);
    }
  }
  std::vector<DoubleFaultTarget> targets;
  for (std::uint32_t i = 0; i < universe.size(); ++i) {
    if (status[i] != FaultStatus::Undetectable) continue;
    std::unordered_set<std::uint32_t> partners;
    const auto add_gate = [&](GateId g) {
      if (auto it = det_by_gate.find(g.value()); it != det_by_gate.end()) {
        for (std::uint32_t d : it->second) {
          if (partners.size() >= max_per_fault) return;
          partners.insert(d);
        }
      }
    };
    for (GateId g : corresponding_gates(universe.faults[i], nl)) {
      add_gate(g);
      // Adjacent gates: drivers of fanins and sinks of outputs.
      if (!nl.gate_alive(g)) continue;
      for (NetId in : nl.gate(g).fanin) {
        if (nl.net(in).has_gate_driver()) add_gate(nl.net(in).driver_gate);
      }
      for (NetId out : nl.gate(g).outputs) {
        for (const PinRef& sink : nl.net(out).sinks) add_gate(sink.gate);
      }
    }
    for (std::uint32_t d : partners) targets.push_back({i, d});
  }
  return targets;
}

DoubleFaultCoverage evaluate_double_fault_coverage(
    const Netlist& nl, const FaultUniverse& universe, const UdfmMap& udfm,
    std::span<const DoubleFaultTarget> targets,
    std::span<const TestPattern> tests) {
  DoubleFaultCoverage out;
  out.total = targets.size();
  if (targets.empty() || tests.empty()) return out;

  const CombView view = CombView::build(nl);
  PairSimulator sim(nl, view);
  std::vector<bool> covered(targets.size(), false);
  std::unordered_map<std::uint32_t, std::vector<Excitation>> exc_cache;
  const auto excs_of = [&](std::uint32_t fi) -> std::span<const Excitation> {
    auto [it, inserted] = exc_cache.try_emplace(fi);
    if (inserted) {
      it->second = build_excitations(universe.faults[fi], nl, udfm);
    }
    return it->second;
  };

  for (std::size_t first = 0; first < tests.size(); first += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - first);
    sim.load(tests, first, count);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      if (covered[t]) continue;
      if (pair_detect_mask(sim, excs_of(targets[t].undetectable),
                           excs_of(targets[t].detectable)) != 0) {
        covered[t] = true;
        ++out.covered;
      }
    }
  }
  return out;
}

std::size_t augment_tests_for_double_faults(
    const Netlist& nl, const FaultUniverse& universe, const UdfmMap& udfm,
    std::span<const DoubleFaultTarget> targets, double goal,
    std::size_t max_new, std::uint64_t seed,
    std::vector<TestPattern>* tests) {
  const CombView view = CombView::build(nl);
  PairSimulator sim(nl, view);
  Rng rng(seed);
  std::vector<bool> covered(targets.size(), false);
  std::unordered_map<std::uint32_t, std::vector<Excitation>> exc_cache;
  const auto excs_of = [&](std::uint32_t fi) -> std::span<const Excitation> {
    auto [it, inserted] = exc_cache.try_emplace(fi);
    if (inserted) {
      it->second = build_excitations(universe.faults[fi], nl, udfm);
    }
    return it->second;
  };

  // Baseline coverage from the existing tests.
  std::size_t num_covered = 0;
  for (std::size_t first = 0; first < tests->size(); first += 64) {
    const std::size_t count =
        std::min<std::size_t>(64, tests->size() - first);
    sim.load(*tests, first, count);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      if (covered[t]) continue;
      if (pair_detect_mask(sim, excs_of(targets[t].undetectable),
                           excs_of(targets[t].detectable)) != 0) {
        covered[t] = true;
        ++num_covered;
      }
    }
  }

  std::size_t added = 0;
  const std::size_t num_sources = view.sources.size();
  while (added < max_new &&
         static_cast<double>(num_covered) <
             goal * static_cast<double>(targets.size())) {
    // One random batch; keep only lanes that newly cover a target.
    std::vector<TestPattern> batch;
    for (int lane = 0; lane < 64; ++lane) {
      TestPattern t;
      for (std::size_t s = 0; s < num_sources; ++s) {
        t.frame0.push_back(rng.flip());
        t.frame1.push_back(rng.flip());
      }
      batch.push_back(std::move(t));
    }
    sim.load(batch, 0, 64);
    std::uint64_t useful = 0;
    for (std::size_t t = 0; t < targets.size(); ++t) {
      if (covered[t]) continue;
      const std::uint64_t mask =
          pair_detect_mask(sim, excs_of(targets[t].undetectable),
                           excs_of(targets[t].detectable));
      if (mask != 0) {
        covered[t] = true;
        ++num_covered;
        useful |= mask & (~mask + 1);
      }
    }
    if (useful == 0) break;  // random patterns stopped helping
    for (int lane = 0; lane < 64 && added < max_new; ++lane) {
      if ((useful >> lane) & 1) {
        tests->push_back(batch[static_cast<std::size_t>(lane)]);
        ++added;
      }
    }
  }
  return added;
}

}  // namespace dfmres
