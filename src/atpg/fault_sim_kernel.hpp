#pragma once

// Internal registry of the width/ISA-specialized fault-simulation
// kernels. Each kernel is one instantiation of fsim::Kernel<Word> (see
// fault_sim_kernel_impl.hpp) compiled in a translation unit whose flags
// match the Word's ISA:
//
//   fault_sim_kernel_portable.cpp  -> scalar (W=1), portable4, portable8
//   fault_sim_kernel_avx2.cpp      -> avx2   (W=4, -mavx2)
//   fault_sim_kernel_avx512.cpp    -> avx512 (W=8, -mavx512f)
//
// FaultSimulator binds one ops table at rebind() time from the resolved
// global SimdMode and calls through the function pointers; the math
// never crosses a virtual boundary and each pointer target is a fully
// specialized, inline-expanded kernel.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "src/sim/simd_dispatch.hpp"

namespace dfmres {

class FaultSimulator;
struct CowPlan;
struct DenseView;
struct Excitation;
struct GoodFrames;
struct TestPattern;

namespace fsim {

struct KernelOps {
  const char* name = "scalar";  ///< resolved-mode spelling ("avx2", ...)
  int words = 1;                ///< W: 64-lane groups per SimWord

  /// Full good-machine load: packs tests[first..first+count) into the
  /// W-word lane layout and evaluates both frames in one fused topo
  /// pass over the simulator's own frame arrays.
  void (*load)(FaultSimulator& sim, std::span<const TestPattern> tests,
               std::size_t first, std::size_t count) = nullptr;
  /// Copy-on-write overlay load (value-cutoff event replay) against a
  /// bound baseline batch; frames must share this kernel's W layout.
  void (*load_overlay)(FaultSimulator& sim, const GoodFrames& gf,
                       const CowPlan& plan, std::size_t count) = nullptr;
  /// Detect-mask query: fills out[0 .. groups) with per-64-lane-group
  /// masks (bit-identical to W independent scalar queries).
  void (*detect)(FaultSimulator& sim, std::span<const Excitation> excitations,
                 std::uint64_t* out) = nullptr;
  /// Standalone batch simulation into W-layout GoodFrames (baseline
  /// builder; no simulator instance involved).
  void (*simulate_batch)(const DenseView& dv,
                         std::span<const TestPattern> patterns,
                         std::size_t first, int lanes, GoodFrames* out,
                         std::vector<std::uint64_t>& src0,
                         std::vector<std::uint64_t>& src1) = nullptr;
  /// Rebase fold: recompute exactly the plan's dirty slots in place over
  /// full W-layout frame arrays.
  void (*refresh_dirty)(const DenseView& dv, const CowPlan& plan,
                        std::uint64_t* f0, std::uint64_t* f1) = nullptr;
};

/// Ops for a RESOLVED mode (never kAuto). Unavailable ISA kernels return
/// their portable fallback, mirroring resolve_simd_mode.
[[nodiscard]] const KernelOps* kernel_ops_for(SimdMode resolved);

/// Ops for the current global mode, resolved: what rebind() binds.
[[nodiscard]] const KernelOps* active_kernel_ops();

// Per-TU providers (null when the ISA could not be compiled in).
[[nodiscard]] const KernelOps* scalar_kernel_ops();
[[nodiscard]] const KernelOps* portable4_kernel_ops();
[[nodiscard]] const KernelOps* portable8_kernel_ops();
[[nodiscard]] const KernelOps* avx2_kernel_ops();
[[nodiscard]] const KernelOps* avx512_kernel_ops();

}  // namespace fsim

// Set by the dispatcher so resolve_simd_mode can refuse ISA kernels the
// compiler could not build (defined in sim/simd_dispatch.cpp, published
// from fault_sim_kernel.cpp's registration).
extern std::atomic<bool> g_avx2_kernel_compiled;
extern std::atomic<bool> g_avx512_kernel_compiled;

}  // namespace dfmres
