// Kernel registry: maps a resolved SimdMode to its ops table and tells
// the dispatcher which ISA kernels this binary actually carries (the
// flag-guarded TUs return null when their flag was unavailable).

#include "src/atpg/fault_sim_kernel.hpp"

namespace dfmres {

namespace fsim {

namespace {

// Publishes kernel availability to resolve_simd_mode before main():
// whether an --simd=auto run may pick avx2/avx512 depends on both cpuid
// and whether the flagged TUs compiled.
const struct KernelRegistration {
  KernelRegistration() {
    g_avx2_kernel_compiled.store(avx2_kernel_ops() != nullptr,
                                 std::memory_order_relaxed);
    g_avx512_kernel_compiled.store(avx512_kernel_ops() != nullptr,
                                   std::memory_order_relaxed);
  }
} g_kernel_registration;

}  // namespace

const KernelOps* kernel_ops_for(SimdMode resolved) {
  switch (resolved) {
    case SimdMode::kScalar:
      return scalar_kernel_ops();
    case SimdMode::kPortable4:
      return portable4_kernel_ops();
    case SimdMode::kPortable8:
      return portable8_kernel_ops();
    case SimdMode::kAvx2:
      if (const KernelOps* ops = avx2_kernel_ops()) return ops;
      return portable4_kernel_ops();
    case SimdMode::kAvx512:
      if (const KernelOps* ops = avx512_kernel_ops()) return ops;
      return portable8_kernel_ops();
    case SimdMode::kAuto:
      break;
  }
  // kAuto (or an out-of-range value) resolves through the dispatcher.
  return kernel_ops_for(resolve_simd_mode(SimdMode::kAuto));
}

const KernelOps* active_kernel_ops() {
  return kernel_ops_for(resolve_simd_mode(global_simd_mode()));
}

}  // namespace fsim

}  // namespace dfmres
