#include "src/atpg/engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <limits>
#include <memory>
#include <optional>

#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"

namespace dfmres {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Completes a V3 source assignment into a fully specified frame,
/// randomizing the don't-cares.
std::vector<std::uint8_t> concretize(std::span<const V3> assign, Rng& rng) {
  std::vector<std::uint8_t> out(assign.size());
  for (std::size_t i = 0; i < assign.size(); ++i) {
    switch (assign[i]) {
      case V3::Zero: out[i] = 0; break;
      case V3::One: out[i] = 1; break;
      case V3::X: out[i] = rng.flip() ? 1 : 0; break;
    }
  }
  return out;
}

/// Phase-1 random frames come from the generator shared with the
/// baseline builder (random_sim_frame), so a SimBaseline built at the
/// same rng seed holds exactly the patterns drawn here.
std::vector<std::uint8_t> random_frame(std::size_t n, Rng& rng) {
  return random_sim_frame(n, rng);
}

}  // namespace

AtpgResult run_atpg_overlay(const Netlist& nl, const FaultUniverse& universe,
                            const UdfmMap& udfm, const AtpgOptions& options,
                            const FaultStatusCache* base,
                            FaultStatusCache* updates) {
  TraceSpan run_span("atpg.run", "atpg");
  if (run_span.active()) {
    run_span.arg("faults", static_cast<std::uint64_t>(universe.size()));
    run_span.arg("warm_start", options.seed_tests != nullptr ? 1 : 0);
  }

  AtpgResult result;
  result.status.assign(universe.size(), FaultStatus::Unknown);

  const CombView view = CombView::build(nl);
  // The SoA snapshot every simulator of this run shares: built once,
  // handed to the arena slots, and diffed against the caller's baseline
  // view for the copy-on-write replay plan.
  auto dense = DenseView::build_shared(nl, view);
  const std::size_t num_sources = view.sources.size();
  Rng rng(options.seed);

  const auto cached_lookup = [&](const Fault& f) {
    if (updates) {
      const FaultStatus s = updates->lookup(f);
      if (s != FaultStatus::Unknown) return s;
    }
    return base ? base->lookup(f) : FaultStatus::Unknown;
  };
  const bool have_seeds = options.seed_tests != nullptr &&
                          !options.seed_tests->empty() &&
                          options.seed_tests->front().frame0.size() ==
                              num_sources;
  const auto untouched = [&](std::uint32_t i) {
    return options.cone_untouched != nullptr &&
           i < options.cone_untouched->size() &&
           (*options.cone_untouched)[i] != 0;
  };

  // Pre-build excitations; resolve trivially undetectable and cached
  // faults immediately.
  std::vector<std::vector<Excitation>> excitations(universe.size());
  std::vector<std::uint32_t> targets;  // indices still needing work
  // Distinct physical violations can induce the same logic fault (e.g.
  // several weak vias on one net); classify one representative per key
  // and mirror the verdict onto the duplicates at the end.
  std::unordered_map<Fault::Key, std::uint32_t> representative;
  std::vector<std::uint32_t> mirror_of(universe.size(),
                                       std::numeric_limits<std::uint32_t>::max());
  for (std::uint32_t i = 0; i < universe.size(); ++i) {
    const Fault& f = universe.faults[i];
    const auto [it, inserted] = representative.emplace(f.key(), i);
    if (!inserted) {
      mirror_of[i] = it->second;
      continue;
    }
    const FaultStatus cached = cached_lookup(f);
    if (cached == FaultStatus::Undetectable || cached == FaultStatus::Aborted ||
        (cached == FaultStatus::Detected && !options.generate_tests)) {
      result.status[i] = cached;
      continue;
    }
    excitations[i] = build_excitations(f, nl, udfm);
    if (excitations[i].empty()) {
      // Not excitable even at the cell boundary: undetectable by
      // construction (counted in U like any other fault).
      result.status[i] = FaultStatus::Undetectable;
      continue;
    }
    targets.push_back(i);
  }

  std::vector<TestPattern> tests;

  // Fault-simulation sweeps fan out over the shared thread pool. Each
  // extra lane owns a private FaultSimulator (detect_mask mutates the
  // faulty/stamp/scheduled scratch) that adopts the master's good-value
  // frames via load_from; the sweep writes each fault's mask into its
  // own slot and every reduction below runs serially in fault order, so
  // results are bit-identical for any thread count.
  const int num_workers = ThreadPool::resolve_threads(options.num_threads);
  result.counters.threads_used = num_workers;
  ThreadPool& pool = ThreadPool::shared();
  // All simulators come from the arena (slot 0 = master); a DesignFlow
  // passes a persistent arena so the frame/scratch buffers survive
  // between calls instead of being reallocated per candidate.
  FaultSimArena local_arena;
  FaultSimArena& arena = options.arena ? *options.arena : local_arena;
  FaultSimulator& simulator = arena.acquire(0, dense);
  simulator.set_cancel(options.cancel);
  std::vector<FaultSimulator*> worker_sims;
  for (int w = 1; w < num_workers; ++w) {
    worker_sims.push_back(&arena.acquire(static_cast<std::size_t>(w), dense));
    worker_sims.back()->set_cancel(options.cancel);
  }

  // Copy-on-write seed replay: when the caller supplies baseline frames
  // for this seed set, diff this design against the baseline design and
  // replay each batch by materializing only the dirty slots. The plan is
  // structural, so an invalid plan (changed sources, a sequential edit)
  // just falls back to full loads — never a wrong answer.
  CowPlan cow_plan;
  bool use_overlay = false;
  if (have_seeds && options.baseline != nullptr && options.baseline->valid() &&
      options.baseline->num_patterns == options.seed_tests->size() &&
      options.baseline->frame_width == num_sources &&
      // Baseline frames carry the SimWord layout they were built with; a
      // mode change between builds just disables the overlay (full loads
      // are always correct).
      options.baseline->words == simulator.words()) {
    cow_plan = build_cow_plan(*dense, *options.baseline->view);
    use_overlay = cow_plan.valid;
  }
  if (run_span.active()) run_span.arg("overlay", use_overlay ? 1 : 0);

  // Wide batching: one load carries up to `capacity` = 64 * W pattern
  // lanes under the bound kernel, in `max_groups` = W groups of 64. All
  // reductions below emulate the scalar engine's group-sequential order
  // exactly, so the run's verdicts, tests, and rng stream match a
  // --simd=scalar run bit for bit.
  const int capacity = simulator.lane_capacity();
  const int max_groups = capacity / 64;

  // masks[k * groups + g] = group g of detect_masks(excitations[items[k]])
  // for the currently loaded batch, computed across the pool (stride =
  // simulator.groups() at load time).
  const auto sweep_masks = [&](std::span<const std::uint32_t> items,
                               std::vector<std::uint64_t>& masks) {
    TraceSpan span("atpg.sweep", "atpg");
    if (span.active()) {
      span.arg("items", static_cast<std::uint64_t>(items.size()));
    }
    const std::size_t groups =
        static_cast<std::size_t>(simulator.groups());
    // Zero-fill, not resize: a cancelled sweep leaves unvisited slots
    // untouched, and a stale mask must read "not detected".
    masks.assign(items.size() * groups, 0);
    const auto run_range = [&](int lane, std::size_t begin, std::size_t end) {
      FaultSimulator& sim = lane == 0 ? simulator : *worker_sims[lane - 1];
      for (std::size_t k = begin; k < end; ++k) {
        sim.detect_masks(excitations[items[k]], &masks[k * groups]);
      }
    };
    // Below this, the per-worker good-frame copies cost more than the
    // sweep itself.
    constexpr std::size_t kMinParallelItems = 32;
    if (num_workers <= 1 || items.size() < kMinParallelItems) {
      run_range(0, 0, items.size());
      return;
    }
    for (auto* sim : worker_sims) sim->load_from(simulator);
    const std::size_t grain = std::clamp<std::size_t>(
        items.size() / (4 * static_cast<std::size_t>(num_workers)), 1, 32);
    pool.parallel_for(items.size(), grain, num_workers, run_range,
                      options.cancel);
  };

  std::vector<std::uint64_t> sweep_scratch;
  // Outcome of one wide drop sweep: the lanes that first-detected
  // something, per 64-lane group, plus how many groups the scalar engine
  // would actually have processed before its target list ran dry.
  struct DropOutcome {
    std::array<std::uint64_t, kMaxSimWords> useful{};
    int consumed = 0;
  };
  // Sweeps already ran over all groups at once; this reduction replays
  // the scalar engine's batch-by-batch semantics over the per-group
  // masks: group g's drops land before group g+1 is considered, a fault
  // dropped by an earlier group never credits a later one, and groups
  // past the point where targets emptied are not consumed at all (the
  // scalar engine would never have loaded them). Lane crediting within
  // a group is unchanged: each newly detected fault credits exactly one
  // lane — the lowest set bit of its group mask — so a lane survives
  // iff it is some fault's first detector, matching the classic
  // serial-simulation rule independent of sweep order. Consumes the
  // masks in sweep_scratch (stride = simulator.groups()).
  const auto drop_from_masks = [&]() {
    DropOutcome out;
    const std::size_t groups = static_cast<std::size_t>(simulator.groups());
    std::size_t remaining = targets.size();
    for (std::size_t g = 0; g < groups; ++g) {
      if (remaining == 0) break;
      out.consumed = static_cast<int>(g) + 1;
      for (std::size_t k = 0; k < targets.size(); ++k) {
        const std::uint32_t i = targets[k];
        if (result.status[i] != FaultStatus::Unknown) continue;
        const std::uint64_t mask = sweep_scratch[k * groups + g];
        if (mask != 0) {
          result.status[i] = FaultStatus::Detected;
          --remaining;
          out.useful[g] |= mask & (~mask + 1);
        }
      }
    }
    std::vector<std::uint32_t> still;
    still.reserve(remaining);
    for (const std::uint32_t i : targets) {
      if (result.status[i] == FaultStatus::Unknown) still.push_back(i);
    }
    targets = std::move(still);
    return out;
  };
  const auto drop_with_batch = [&](std::span<const TestPattern> from,
                                   std::size_t first, std::size_t count) {
    simulator.load(from, first, count);
    sweep_masks(targets, sweep_scratch);
    return drop_from_masks();
  };
  // Overlay-path twin of drop_with_batch for the phase-0 replay. In
  // verify mode the batch is re-swept under a full load and the run
  // continues with the full-load masks, so a mismatch is counted but
  // never changes the outcome.
  const auto drop_with_baseline_batch = [&](std::span<const TestPattern> seeds,
                                            std::size_t first,
                                            std::size_t count) {
    simulator.load_baseline(*options.baseline, cow_plan,
                            first / static_cast<std::size_t>(capacity), count);
    sweep_masks(targets, sweep_scratch);
    if (options.verify_overlays) {
      const std::vector<std::uint64_t> overlay_masks = sweep_scratch;
      simulator.load(seeds, first, count);
      sweep_masks(targets, sweep_scratch);
      ++result.counters.overlay_verified_batches;
      if (overlay_masks != sweep_scratch) {
        ++result.counters.overlay_verify_mismatches;
      }
    }
    return drop_from_masks();
  };
  // Phase-1 twin: the committed baseline also carries pre-simulated
  // frames for the engine's own deterministic random batches (same rng
  // seed, same generator, same wide packing), so a probe replays those
  // through the overlay too. The freshly drawn patterns are still
  // compared against the stored ones before use — any divergence (seed
  // drift, width change) falls back to the full load, never a wrong
  // answer.
  const auto drop_with_random_baseline_batch =
      [&](std::span<const TestPattern> from, std::size_t first,
          std::size_t batch, std::size_t count) {
        simulator.load_baseline_random(*options.baseline, cow_plan, batch,
                                       count);
        sweep_masks(targets, sweep_scratch);
        if (options.verify_overlays) {
          const std::vector<std::uint64_t> overlay_masks = sweep_scratch;
          simulator.load(from, first, count);
          sweep_masks(targets, sweep_scratch);
          ++result.counters.overlay_verified_batches;
          if (overlay_masks != sweep_scratch) {
            ++result.counters.overlay_verify_mismatches;
          }
        }
        return drop_from_masks();
      };

  // ---- phase 0: warm-start replay of the seed test set ----
  // One drop sweep over the previous run's compacted patterns detects
  // (and drops) every fault those tests still cover — for a
  // function-preserving rewrite that is all previously-detected faults
  // outside the rewritten cone — before any random batch or PODEM call.
  const auto phase0_start = Clock::now();
  // Phase spans use optional emplace/reset so the span boundaries track
  // the existing phaseN_start/phaseN_seconds markers exactly.
  std::optional<TraceSpan> phase_span;
  phase_span.emplace("atpg.phase0.replay", "atpg");
  if (have_seeds && !targets.empty() && !cancel_expired(options.cancel)) {
    const std::vector<TestPattern>& seeds = *options.seed_tests;
    const std::size_t before = targets.size();
    for (std::size_t first = 0;
         first < seeds.size() && !targets.empty() &&
         !cancel_expired(options.cancel);
         first += static_cast<std::size_t>(capacity)) {
      const std::size_t count = std::min<std::size_t>(
          static_cast<std::size_t>(capacity), seeds.size() - first);
      const DropOutcome outcome =
          use_overlay ? drop_with_baseline_batch(seeds, first, count)
                      : drop_with_batch(seeds, first, count);
      if (options.generate_tests) {
        // Useful seed patterns join the candidate pool so the phase-3
        // compaction keeps covering the faults they detect.
        for (std::size_t lane = 0; lane < count; ++lane) {
          if ((outcome.useful[lane >> 6] >> (lane & 63)) & 1) {
            tests.push_back(seeds[first + lane]);
          }
        }
      }
    }
    result.counters.replay_drops +=
        static_cast<std::uint64_t>(before - targets.size());
  }
  // Cone-restricted retargeting: a fault the rewrite provably could not
  // have changed and that the cache knows is detectable does not earn
  // random patterns or a PODEM call just because a test set is being
  // generated — replay already re-covered it above (the seed set is the
  // previous compacted set), so the residual case is counted and
  // trusted from the cache.
  if (options.cone_untouched != nullptr && !targets.empty()) {
    std::vector<std::uint32_t> still;
    still.reserve(targets.size());
    for (const std::uint32_t i : targets) {
      if (untouched(i) &&
          cached_lookup(universe.faults[i]) == FaultStatus::Detected) {
        result.status[i] = FaultStatus::Detected;
        ++result.counters.podem_targets_skipped;
      } else {
        still.push_back(i);
      }
    }
    targets = std::move(still);
  }
  phase_span.reset();
  result.counters.phase0_seconds = seconds_since(phase0_start);

  // ---- phase 1: random pattern pairs with fault dropping ----
  const auto phase1_start = Clock::now();
  phase_span.emplace("atpg.phase1.random", "atpg");
  // The scalar engine draws one 64-pattern batch at a time and stops
  // drawing the moment targets run dry; the rng then feeds PODEM's
  // concretize. A wide chunk draws up to `max_groups` batches up front,
  // so the draw is checkpointed per group: if the drop reduction says
  // the scalar engine would only have consumed the first k groups, the
  // rng rewinds to its state after group k's draw and the undrawn
  // groups' patterns are discarded — the downstream rng stream and the
  // kept test list match the scalar run exactly.
  int batch = 0;
  while (batch < options.random_batches && !targets.empty() &&
         !cancel_expired(options.cancel)) {
    const int chunk_groups =
        std::min(max_groups, options.random_batches - batch);
    const std::size_t first = tests.size();
    std::array<Rng, kMaxSimWords> rng_after;
    for (int g = 0; g < chunk_groups; ++g) {
      for (int lane = 0; lane < 64; ++lane) {
        tests.push_back({random_frame(num_sources, rng),
                         random_frame(num_sources, rng)});
      }
      rng_after[static_cast<std::size_t>(g)] = rng;
    }
    const std::size_t drawn = 64 * static_cast<std::size_t>(chunk_groups);
    // `batch` is a multiple of max_groups whenever the loop continues
    // (a short chunk only happens when targets empty or the batch quota
    // runs out, both of which end the loop), so the wide-batch index
    // into the baseline's pre-simulated frames is exact.
    const std::size_t wide_batch =
        static_cast<std::size_t>(batch / max_groups);
    const bool batch_cached =
        use_overlay &&
        wide_batch < options.baseline->random_batches.size() &&
        options.baseline->random_batches[wide_batch].lanes ==
            static_cast<int>(drawn) &&
        options.baseline->random_patterns.size() >=
            static_cast<std::size_t>(batch) * 64 + drawn &&
        std::equal(tests.begin() + static_cast<std::ptrdiff_t>(first),
                   tests.end(),
                   options.baseline->random_patterns.begin() +
                       static_cast<std::ptrdiff_t>(batch) * 64);
    const DropOutcome outcome =
        batch_cached
            ? drop_with_random_baseline_batch(tests, first, wide_batch, drawn)
            : drop_with_batch(tests, first, drawn);
    const int consumed = std::max(outcome.consumed, 1);
    if (consumed < chunk_groups) {
      rng = rng_after[static_cast<std::size_t>(consumed) - 1];
      tests.resize(first + 64 * static_cast<std::size_t>(consumed));
    }
    // Keep only lanes that first-detected something; discard the rest.
    std::vector<TestPattern> kept;
    for (int g = 0; g < consumed; ++g) {
      for (int lane = 0; lane < 64; ++lane) {
        if ((outcome.useful[g] >> lane) & 1) {
          kept.push_back(
              std::move(tests[first + static_cast<std::size_t>(g) * 64 +
                              static_cast<std::size_t>(lane)]));
        }
      }
    }
    tests.resize(first);
    for (auto& t : kept) tests.push_back(std::move(t));
    batch += consumed;
  }
  phase_span.reset();
  result.counters.phase1_seconds = seconds_since(phase1_start);

  // ---- phase 2: deterministic PODEM ----
  const auto phase2_start = Clock::now();
  phase_span.emplace("atpg.phase2.podem", "atpg");
  Podem podem(nl, view, {options.backtrack_limit, options.cancel});
  // Process remaining targets; each generated test also drops others.
  std::vector<std::uint32_t> queue = std::move(targets);
  targets.clear();
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    if (cancel_expired(options.cancel)) break;
    const std::uint32_t i = queue[qi];
    if (result.status[i] != FaultStatus::Unknown) continue;

    bool any_aborted = false;
    bool detected = false;
    for (const Excitation& exc : excitations[i]) {
      // Frame-0 cube first: an unjustifiable initialization kills the
      // whole excitation.
      std::vector<CondLiteral> frame0;
      for (const CondLiteral& lit : exc.lits) {
        if (lit.frame == 0) frame0.push_back(lit);
      }
      std::vector<V3> assign0;
      if (!frame0.empty()) {
        const auto r = podem.justify(frame0, &assign0);
        if (r == Podem::Outcome::Undetectable) continue;
        if (r == Podem::Outcome::Aborted) {
          any_aborted = true;
          continue;
        }
      }
      std::vector<V3> assign1;
      const auto r = podem.detect(exc, &assign1);
      if (r == Podem::Outcome::Aborted) {
        any_aborted = true;
        continue;
      }
      if (r == Podem::Outcome::Undetectable) continue;

      detected = true;
      result.status[i] = FaultStatus::Detected;
      if (options.generate_tests) {
        TestPattern t;
        t.frame0 = assign0.empty() ? random_frame(num_sources, rng)
                                   : concretize(assign0, rng);
        t.frame1 = concretize(assign1, rng);
        tests.push_back(std::move(t));
        // Drop other queued faults with the fresh test.
        targets.clear();
        for (std::size_t qj = qi + 1; qj < queue.size(); ++qj) {
          if (result.status[queue[qj]] == FaultStatus::Unknown) {
            targets.push_back(queue[qj]);
          }
        }
        simulator.load(tests, tests.size() - 1, 1);
        sweep_masks(targets, sweep_scratch);
        for (std::size_t k = 0; k < targets.size(); ++k) {
          if (sweep_scratch[k] != 0) {
            result.status[targets[k]] = FaultStatus::Detected;
          }
        }
      }
      break;
    }
    if (!detected) {
      result.status[i] =
          any_aborted ? FaultStatus::Aborted : FaultStatus::Undetectable;
    }
  }
  phase_span.reset();
  result.counters.phase2_seconds = seconds_since(phase2_start);

  result.cancelled = cancel_expired(options.cancel);

  // ---- phase 3: reverse-order test compaction ----
  const auto phase3_start = Clock::now();
  phase_span.emplace("atpg.phase3.compact", "atpg");
  if (options.generate_tests && !tests.empty() && !result.cancelled) {
    std::vector<std::uint32_t> uncovered;
    for (std::uint32_t i = 0; i < universe.size(); ++i) {
      if (result.status[i] == FaultStatus::Detected &&
          !excitations[i].empty()) {
        uncovered.push_back(i);
      }
    }
    std::vector<TestPattern> compacted;
    std::vector<TestPattern> reversed(tests.rbegin(), tests.rend());
    for (std::size_t first = 0; first < reversed.size() && !uncovered.empty();
         first += static_cast<std::size_t>(capacity)) {
      const std::size_t count = std::min<std::size_t>(
          static_cast<std::size_t>(capacity), reversed.size() - first);
      simulator.load(reversed, first, count);
      const std::size_t groups = static_cast<std::size_t>(simulator.groups());
      std::vector<std::uint64_t> masks;  // stride = groups
      sweep_masks(uncovered, masks);
      // Lanes run in global order (group-sequential), and the mask rows
      // are compacted alongside the uncovered list — a fault's group-g
      // mask does not depend on which faults remain, so this equals the
      // scalar engine's re-sweep per 64-lane batch.
      for (std::size_t lane = 0; lane < count; ++lane) {
        const std::size_t g = lane >> 6;
        const std::size_t bit = lane & 63;
        bool useful = false;
        std::vector<std::uint32_t> still;
        std::vector<std::uint64_t> still_masks;
        for (std::size_t u = 0; u < uncovered.size(); ++u) {
          if ((masks[u * groups + g] >> bit) & 1) {
            useful = true;
          } else {
            still.push_back(uncovered[u]);
            still_masks.insert(
                still_masks.end(),
                masks.begin() + static_cast<std::ptrdiff_t>(u * groups),
                masks.begin() + static_cast<std::ptrdiff_t>((u + 1) * groups));
          }
        }
        if (useful) {
          compacted.push_back(reversed[first + lane]);
          uncovered = std::move(still);
          masks = std::move(still_masks);
        }
      }
    }
    result.tests = std::move(compacted);
  }
  phase_span.reset();
  result.counters.phase3_seconds = seconds_since(phase3_start);

  // Fold the per-worker instrumentation into the result. The counters
  // live on each private simulator (never shared across threads), so
  // the hot loops stay free of contended atomics and this serial merge
  // is the only synchronization the instrumentation needs.
  result.counters.podem_backtracks = podem.total_backtracks();
  result.counters.sim_words = simulator.words();
  result.counters.patterns_simulated = simulator.patterns_simulated();
  result.counters.detect_mask_calls = simulator.detect_mask_calls();
  result.counters.propagation_events = simulator.propagation_events();
  result.counters.frame_bytes_materialized =
      simulator.frame_bytes_materialized();
  result.counters.full_loads = simulator.full_loads();
  result.counters.overlay_loads = simulator.overlay_loads();
  result.counters.overlay_dirty_nets = simulator.overlay_dirty_nets();
  result.counters.load_seconds = simulator.load_seconds();
  for (const auto* sim : worker_sims) {
    result.counters.patterns_simulated += sim->patterns_simulated();
    result.counters.detect_mask_calls += sim->detect_mask_calls();
    result.counters.propagation_events += sim->propagation_events();
    result.counters.frame_bytes_materialized +=
        sim->frame_bytes_materialized();
    result.counters.full_loads += sim->full_loads();
    result.counters.overlay_loads += sim->overlay_loads();
    result.counters.overlay_dirty_nets += sim->overlay_dirty_nets();
    result.counters.load_seconds += sim->load_seconds();
  }

  // ---- bookkeeping ----
  for (std::uint32_t i = 0; i < universe.size(); ++i) {
    if (mirror_of[i] != std::numeric_limits<std::uint32_t>::max()) {
      result.status[i] = result.status[mirror_of[i]];
    }
  }
  for (std::uint32_t i = 0; i < universe.size(); ++i) {
    switch (result.status[i]) {
      case FaultStatus::Detected: ++result.num_detected; break;
      case FaultStatus::Undetectable: ++result.num_undetectable; break;
      case FaultStatus::Aborted: ++result.num_aborted; break;
      case FaultStatus::Unknown: ++result.counters.cancelled_targets; break;
    }
    // A cancelled run stores nothing: its Unknowns (and any Aborted
    // produced by the cut-short searches) must not clobber cached
    // verdicts from complete runs.
    if (updates && !result.cancelled) {
      updates->store(universe.faults[i], result.status[i]);
    }
  }
  return result;
}

AtpgResult run_atpg(const Netlist& nl, const FaultUniverse& universe,
                    const UdfmMap& udfm, const AtpgOptions& options,
                    FaultStatusCache* cache) {
  return run_atpg_overlay(nl, universe, udfm, options, cache, cache);
}

}  // namespace dfmres
