#include "src/atpg/podem.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dfmres {

namespace {
constexpr int kPow3[7] = {1, 3, 9, 27, 81, 243, 729};
}

Podem::Podem(const Netlist& nl, const CombView& view, Config config)
    : nl_(nl), view_(view), config_(config) {
  value_.resize(view.net_slots);
  source_assign_.resize(view.sources.size());
  source_ordinal_.assign(view.net_slots, -1);
  for (std::size_t i = 0; i < view.sources.size(); ++i) {
    source_ordinal_[view.sources[i].value()] = static_cast<std::int32_t>(i);
  }
  // Precompute ternary evaluation LUTs per cell output: index is the
  // base-3 encoding of the input values (0, 1, X). This makes the full
  // forward implication pass ~10x cheaper than enumerating X inputs.
  const Library& lib = nl.library();
  lut_.resize(lib.num_cells());
  for (std::uint32_t c = 0; c < lib.num_cells(); ++c) {
    const CellSpec& cell = lib.cell(CellId{c});
    if (cell.sequential) continue;
    const int n = cell.num_inputs;
    const int combos = kPow3[n];
    for (int out = 0; out < cell.num_outputs; ++out) {
      auto& table = lut_[c][static_cast<std::size_t>(out)];
      table.resize(static_cast<std::size_t>(combos));
      V3 ins[kMaxCellInputs];
      for (int idx = 0; idx < combos; ++idx) {
        int rest = idx;
        for (int i = 0; i < n; ++i) {
          ins[i] = static_cast<V3>(rest % 3);
          rest /= 3;
        }
        table[static_cast<std::size_t>(idx)] = static_cast<std::uint8_t>(
            eval_cell_v3(cell, out, {ins, static_cast<std::size_t>(n)}));
      }
    }
  }
  // Topological positions for cone ordering.
  topo_pos_.assign(nl.gate_capacity(), 0);
  for (std::uint32_t i = 0; i < view.order.size(); ++i) {
    topo_pos_[view.order[i].value()] = i;
  }
  in_cone_net_.assign(view.net_slots, 0);
  cone_seen_gate_.assign(nl.gate_capacity(), 0);
  visited_net_.assign(view.net_slots, 0);
  relevant_net_.assign(view.net_slots, 0);
  relevant_gate_.assign(nl.gate_capacity(), 0);
  observe_flag_.assign(view.net_slots, false);
  for (NetId obs : view.observe) observe_flag_[obs.value()] = true;
}

V3 Podem::eval_gate(GateId g, int out) const {
  const auto& gate = nl_.gate(g);
  int idx = 0;
  for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
    idx += static_cast<int>(value_[gate.fanin[i].value()].good) * kPow3[i];
  }
  return static_cast<V3>(
      lut_[nl_.gate(g).cell.value()][static_cast<std::size_t>(out)]
          [static_cast<std::size_t>(idx)]);
}

void Podem::simulate_good() {
  // Baseline pass for the current search. Only gates in the relevant set
  // are evaluated: every net the search reads is a source or the output
  // of a relevant gate (build_relevant closes backward over drivers), so
  // the skipped gates' stale values are unobservable.
  for (std::size_t i = 0; i < view_.sources.size(); ++i) {
    value_[view_.sources[i].value()].good = source_assign_[i];
  }
  for (GateId g : view_.order) {
    if (relevant_gate_[g.value()] != relevant_epoch_) continue;
    const auto& gate = nl_.gate(g);
    const auto& luts = lut_[gate.cell.value()];
    int idx = 0;
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      idx += static_cast<int>(value_[gate.fanin[i].value()].good) * kPow3[i];
    }
    for (std::size_t k = 0; k < gate.outputs.size(); ++k) {
      value_[gate.outputs[k].value()].good =
          static_cast<V3>(luts[k][static_cast<std::size_t>(idx)]);
    }
  }
}

void Podem::build_cone(NetId victim) {
  ++cone_epoch_;
  cone_gates_.clear();
  in_cone_net_[victim.value()] = cone_epoch_;
  // BFS over sinks; gates collected then sorted topologically.
  scratch_queue_.clear();
  scratch_queue_.push_back(victim);
  while (!scratch_queue_.empty()) {
    const NetId n = scratch_queue_.back();
    scratch_queue_.pop_back();
    for (const PinRef& sink : nl_.net(n).sinks) {
      if (nl_.cell_of(sink.gate).sequential) continue;
      if (cone_seen_gate_[sink.gate.value()] == cone_epoch_) continue;
      cone_seen_gate_[sink.gate.value()] = cone_epoch_;
      cone_gates_.push_back(sink.gate);
      for (NetId out : nl_.gate(sink.gate).outputs) {
        if (in_cone_net_[out.value()] != cone_epoch_) {
          in_cone_net_[out.value()] = cone_epoch_;
          scratch_queue_.push_back(out);
        }
      }
    }
  }
  std::sort(cone_gates_.begin(), cone_gates_.end(),
            [&](GateId a, GateId b) {
              return topo_pos_[a.value()] < topo_pos_[b.value()];
            });
}

void Podem::build_relevant(std::span<const CondLiteral> lits,
                           const Excitation* exc) {
  ++relevant_epoch_;
  scratch_queue_.clear();
  const auto push = [&](NetId n) {
    if (n.valid() && relevant_net_[n.value()] != relevant_epoch_) {
      relevant_net_[n.value()] = relevant_epoch_;
      scratch_queue_.push_back(n);
    }
  };
  for (const CondLiteral& lit : lits) push(lit.net);
  if (exc != nullptr) {
    push(exc->victim);
    for (GateId g : cone_gates_) {
      const auto& gate = nl_.gate(g);
      for (NetId out : gate.outputs) push(out);
      for (NetId in : gate.fanin) push(in);
    }
  }
  // Backward closure over combinational drivers; sources terminate.
  while (!scratch_queue_.empty()) {
    const NetId n = scratch_queue_.back();
    scratch_queue_.pop_back();
    if (source_ordinal_[n.value()] >= 0) continue;
    const auto& net = nl_.net(n);
    if (!net.has_gate_driver()) continue;
    const GateId g = net.driver_gate;
    if (nl_.cell_of(g).sequential) continue;
    relevant_gate_[g.value()] = relevant_epoch_;
    for (NetId in : nl_.gate(g).fanin) push(in);
  }
}

V3 Podem::faulty_of(NetId n) const {
  return in_cone_net_[n.value()] == cone_epoch_ ? value_[n.value()].faulty
                                                : value_[n.value()].good;
}

void Podem::simulate_faulty(const Excitation& exc, V3 excited) {
  // Victim injection on the faulty side; everything outside the victim's
  // fanout cone equals the good machine by construction. Observation is
  // checked in the same pass (one cone walk instead of two).
  V5& v = value_[exc.victim.value()];
  if (excited == V3::One) {
    v.faulty = v3_of(exc.faulty_value);
  } else if (excited == V3::X && v.good != v3_of(exc.faulty_value)) {
    v.faulty = V3::X;
  } else {
    v.faulty = v.good;
  }
  observed_ = observe_flag_[exc.victim.value()] && v.has_fault_effect();
  for (GateId g : cone_gates_) {
    const auto& gate = nl_.gate(g);
    const auto& luts = lut_[gate.cell.value()];
    int idx = 0;
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      idx += static_cast<int>(faulty_of(gate.fanin[i])) * kPow3[i];
    }
    for (std::size_t k = 0; k < gate.outputs.size(); ++k) {
      const NetId out = gate.outputs[k];
      V5& ov = value_[out.value()];
      ov.faulty = static_cast<V3>(luts[k][static_cast<std::size_t>(idx)]);
      observed_ |= observe_flag_[out.value()] && ov.has_fault_effect();
    }
  }
}

V3 Podem::excitation_state(std::span<const CondLiteral> lits) const {
  bool any_x = false;
  for (const CondLiteral& lit : lits) {
    if (lit.frame != 1) continue;
    const V3 v = value_[lit.net.value()].good;
    if (v == V3::X) {
      any_x = true;
    } else if (v != v3_of(lit.value)) {
      return V3::Zero;  // definitely broken
    }
  }
  return any_x ? V3::X : V3::One;
}

bool Podem::x_path_exists(NetId victim) {
  // Forward BFS inside the cone through nets that could still carry the
  // fault effect.
  ++visit_epoch_;
  const auto passable = [&](NetId n) {
    const V5 v{value_[n.value()].good, faulty_of(n)};
    return v.has_fault_effect() || v.faulty == V3::X || v.good == V3::X;
  };
  if (!passable(victim)) return false;
  scratch_queue_.clear();
  scratch_queue_.push_back(victim);
  visited_net_[victim.value()] = visit_epoch_;
  while (!scratch_queue_.empty()) {
    const NetId n = scratch_queue_.back();
    scratch_queue_.pop_back();
    if (nl_.net(n).is_primary_output) return true;
    for (const PinRef& sink : nl_.net(n).sinks) {
      if (nl_.cell_of(sink.gate).sequential) return true;  // reaches a flop
      for (NetId out : nl_.gate(sink.gate).outputs) {
        if (visited_net_[out.value()] != visit_epoch_ && passable(out)) {
          visited_net_[out.value()] = visit_epoch_;
          scratch_queue_.push_back(out);
        }
      }
    }
  }
  return false;
}

std::optional<Podem::Objective> Podem::pick_objective(
    std::span<const CondLiteral> lits, const Excitation* exc) {
  // 1. Unjustified condition literal.
  for (const CondLiteral& lit : lits) {
    if (lit.frame != 1) continue;
    if (value_[lit.net.value()].good == V3::X) {
      return Objective{lit.net, lit.value};
    }
  }
  if (!exc) return std::nullopt;  // pure justification: everything done

  // 2. Victim good value must oppose the forced value.
  const V5& v = value_[exc->victim.value()];
  if (v.good == V3::X) {
    return Objective{exc->victim, !exc->faulty_value};
  }

  // 3. D-frontier inside the victim cone: a gate with a fault effect on
  // an input whose output is still undecided; set one X input to help.
  for (GateId g : cone_gates_) {
    const auto& gate = nl_.gate(g);
    bool has_d_input = false;
    for (NetId in : gate.fanin) {
      const V5 iv{value_[in.value()].good, faulty_of(in)};
      if (iv.has_fault_effect()) {
        has_d_input = true;
        break;
      }
    }
    if (!has_d_input) continue;
    bool output_undecided = false;
    for (NetId out : gate.outputs) {
      const V5 ov{value_[out.value()].good, faulty_of(out)};
      if (!ov.has_fault_effect() &&
          (ov.faulty == V3::X || ov.good == V3::X)) {
        output_undecided = true;
      }
    }
    if (!output_undecided) continue;
    // Choose an X input; prefer the value that exposes the effect.
    const CellSpec& cell = nl_.cell_of(g);
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      if (value_[gate.fanin[i].value()].good != V3::X) continue;
      V3 goods[kMaxCellInputs], faults[kMaxCellInputs];
      for (std::size_t j = 0; j < gate.fanin.size(); ++j) {
        goods[j] = value_[gate.fanin[j].value()].good;
        faults[j] = faulty_of(gate.fanin[j]);
      }
      for (const bool candidate : {true, false}) {
        goods[i] = v3_of(candidate);
        faults[i] = v3_of(candidate);
        for (int k = 0; k < cell.num_outputs; ++k) {
          const V3 go = eval_cell_v3(cell, k, {goods, gate.fanin.size()});
          const V3 fo = eval_cell_v3(cell, k, {faults, gate.fanin.size()});
          if (is_definite(go) && is_definite(fo) && go != fo) {
            return Objective{gate.fanin[i], candidate};
          }
        }
      }
      // Neither value provably propagates; still try one (search explores
      // the other on backtrack).
      return Objective{gate.fanin[i], true};
    }
  }
  return std::nullopt;
}

std::optional<Podem::Decision> Podem::backtrace(Objective obj) const {
  NetId net = obj.net;
  bool want = obj.value;
  for (;;) {
    if (source_ordinal_[net.value()] >= 0) {
      return Decision{static_cast<std::size_t>(source_ordinal_[net.value()]),
                      want, false};
    }
    const auto& n = nl_.net(net);
    if (!n.has_gate_driver()) return std::nullopt;  // undriven: dead end
    const GateId g = n.driver_gate;
    const auto& gate = nl_.gate(g);
    const CellSpec& cell = nl_.cell_of(g);
    const int out_pin = n.driver_pin;

    // Pick an X input; choose the value most likely to produce `want`.
    int chosen = -1;
    bool chosen_value = want;
    V3 ins[kMaxCellInputs];
    for (std::size_t j = 0; j < gate.fanin.size(); ++j) {
      ins[j] = value_[gate.fanin[j].value()].good;
    }
    for (std::size_t i = 0; i < gate.fanin.size() && chosen < 0; ++i) {
      if (ins[i] != V3::X) continue;
      for (const bool candidate : {true, false}) {
        V3 trial[kMaxCellInputs];
        std::copy(ins, ins + gate.fanin.size(), trial);
        trial[i] = v3_of(candidate);
        const V3 out =
            eval_cell_v3(cell, out_pin, {trial, gate.fanin.size()});
        if (out == v3_of(want) || out == V3::X) {
          chosen = static_cast<int>(i);
          chosen_value = candidate;
          if (out == v3_of(want)) break;  // exact justification preferred
        }
      }
    }
    if (chosen < 0) {
      // Every input definite yet output X is impossible; definite output
      // means the objective is already decided against us.
      return std::nullopt;
    }
    net = gate.fanin[static_cast<std::size_t>(chosen)];
    want = chosen_value;
  }
}

void Podem::assign_source(std::size_t source, V3 v) {
  trail_marks_.push_back(trail_.size());
  source_assign_[source] = v;
  const NetId src_net = view_.sources[source];
  if (value_[src_net.value()].good == v) return;
  trail_.push_back({src_net, value_[src_net.value()].good});
  value_[src_net.value()].good = v;
  // Event-driven propagation in topological order, pruned to the gates
  // the current search can observe (see build_relevant). The heap buffer
  // is a member so the per-assignment hot path never allocates.
  auto& queue = event_heap_;
  queue.clear();
  const auto schedule_sinks = [&](NetId n) {
    for (const PinRef& sink : nl_.net(n).sinks) {
      if (relevant_gate_[sink.gate.value()] != relevant_epoch_) continue;
      queue.emplace_back(topo_pos_[sink.gate.value()], sink.gate.value());
      std::push_heap(queue.begin(), queue.end(), std::greater<>{});
    }
  };
  schedule_sinks(src_net);
  std::uint32_t last = std::numeric_limits<std::uint32_t>::max();
  while (!queue.empty()) {
    const auto [pos, gs] = queue.front();
    std::pop_heap(queue.begin(), queue.end(), std::greater<>{});
    queue.pop_back();
    if (gs == last) continue;  // dedupe repeated scheduling
    last = gs;
    const GateId g{gs};
    const auto& gate = nl_.gate(g);
    const auto& luts = lut_[gate.cell.value()];
    int idx = 0;
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      idx += static_cast<int>(value_[gate.fanin[i].value()].good) * kPow3[i];
    }
    for (std::size_t k = 0; k < gate.outputs.size(); ++k) {
      const NetId out = gate.outputs[k];
      const V3 nv = static_cast<V3>(luts[k][static_cast<std::size_t>(idx)]);
      if (value_[out.value()].good != nv) {
        trail_.push_back({out, value_[out.value()].good});
        value_[out.value()].good = nv;
        schedule_sinks(out);
      }
    }
  }
}

void Podem::undo_last_assignment() {
  const std::size_t mark = trail_marks_.back();
  trail_marks_.pop_back();
  while (trail_.size() > mark) {
    value_[trail_.back().net.value()].good = trail_.back().old_good;
    trail_.pop_back();
  }
}

Podem::Outcome Podem::search(std::span<const CondLiteral> lits,
                             const Excitation* exc, std::vector<V3>* test) {
  std::fill(source_assign_.begin(), source_assign_.end(), V3::X);
  if (exc) build_cone(exc->victim);
  build_relevant(lits, exc);
  std::vector<Decision>& stack = stack_;
  stack.clear();
  long backtracks = 0;
  trail_.clear();
  trail_marks_.clear();
  simulate_good();  // all-X baseline; decisions propagate incrementally

  for (;;) {
    const V3 excited = excitation_state(lits);
    bool need_backtrack = false;

    if (excited == V3::Zero) {
      need_backtrack = true;  // a condition literal is definitely broken
    } else if (exc) {
      const V5& v = value_[exc->victim.value()];
      if (v.good == v3_of(exc->faulty_value)) {
        need_backtrack = true;  // victim cannot oppose the forced value
      } else {
        simulate_faulty(*exc, excited);
        if (observed_) {
          if (test) *test = source_assign_;
          return Outcome::Detected;
        }
        if (!x_path_exists(exc->victim)) need_backtrack = true;
      }
    } else if (excited == V3::One) {
      if (test) *test = source_assign_;
      return Outcome::Detected;  // justification complete
    }

    if (!need_backtrack) {
      const auto obj = pick_objective(lits, exc);
      if (!obj) {
        need_backtrack = true;
      } else {
        const auto decision = backtrace(*obj);
        if (!decision) {
          need_backtrack = true;
        } else {
          assign_source(decision->source, v3_of(decision->value));
          stack.push_back(*decision);
          continue;
        }
      }
    }

    // Backtrack: flip the deepest unflipped decision.
    ++total_backtracks_;
    if (++backtracks > config_.backtrack_limit) return Outcome::Aborted;
    if ((backtracks & 63) == 0 && cancel_expired(config_.cancel)) {
      return Outcome::Aborted;
    }
    while (!stack.empty() && stack.back().flipped) {
      undo_last_assignment();
      source_assign_[stack.back().source] = V3::X;
      stack.pop_back();
    }
    if (stack.empty()) return Outcome::Undetectable;
    undo_last_assignment();
    stack.back().flipped = true;
    stack.back().value = !stack.back().value;
    assign_source(stack.back().source, v3_of(stack.back().value));
  }
}

Podem::Outcome Podem::detect(const Excitation& excitation,
                             std::vector<V3>* test) {
  return search(excitation.lits, &excitation, test);
}

Podem::Outcome Podem::justify(std::span<const CondLiteral> lits,
                              std::vector<V3>* test) {
  // The engine justifies frame-0 cubes as an independent single-frame
  // problem; normalize the literals so the search sees all of them.
  std::vector<CondLiteral> frame1(lits.begin(), lits.end());
  for (CondLiteral& lit : frame1) lit.frame = 1;
  return search(frame1, nullptr, test);
}

}  // namespace dfmres
