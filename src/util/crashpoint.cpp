#include "src/util/crashpoint.hpp"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

namespace dfmres {

namespace {

struct ArmedSite {
  std::string site;
  std::atomic<long> remaining{0};
};

// Parsed once; never freed (the process dies by SIGKILL when a site
// fires, so cleanup is moot and a static avoids shutdown-order issues).
// A deque because atomics are not movable.
std::deque<ArmedSite>* g_sites = nullptr;
std::atomic<bool> g_armed{false};
std::atomic<bool> g_parsed{false};
std::mutex g_parse_mutex;

void parse_spec() {
  const char* env = std::getenv("DFMRES_CRASH_AFTER");
  if (env == nullptr || *env == '\0') return;
  auto* sites = new std::deque<ArmedSite>();
  std::string_view spec(env);
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    const std::string_view entry = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    const std::size_t colon = entry.find(':');
    if (colon == std::string_view::npos || colon == 0) continue;
    const std::string count_text(entry.substr(colon + 1));
    char* end = nullptr;
    const long n = std::strtol(count_text.c_str(), &end, 10);
    if (end == count_text.c_str() || *end != '\0' || n <= 0) continue;
    auto& slot = sites->emplace_back();
    slot.site = std::string(entry.substr(0, colon));
    slot.remaining.store(n, std::memory_order_relaxed);
  }
  if (sites->empty()) {
    delete sites;
    return;
  }
  g_sites = sites;
  g_armed.store(true, std::memory_order_release);
}

void ensure_parsed() {
  if (g_parsed.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_parse_mutex);
  if (!g_parsed.load(std::memory_order_relaxed)) {
    parse_spec();
    g_parsed.store(true, std::memory_order_release);
  }
}

}  // namespace

void crash_point_rearm_from_env() {
  std::lock_guard<std::mutex> lock(g_parse_mutex);
  g_armed.store(false, std::memory_order_release);
  g_sites = nullptr;  // leaked: in-flight readers may still hold it
  parse_spec();
  g_parsed.store(true, std::memory_order_release);
}

void crash_point(const char* site) {
  ensure_parsed();
  if (!g_armed.load(std::memory_order_acquire)) return;
  for (ArmedSite& armed : *g_sites) {
    if (armed.site != site) continue;
    if (armed.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Emulate a hard kill: no destructors, no buffered-IO flush.
      ::kill(::getpid(), SIGKILL);
      ::pause();  // unreachable; quiets noreturn analysis across signals
    }
    return;
  }
}

}  // namespace dfmres
