#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.hpp"

namespace dfmres {

/// One completed span, recorded when its TraceSpan is destroyed.
/// `name`/`cat` are string literals (spans are opened at fixed program
/// points); only the optional args allocate.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  std::uint64_t start_ns = 0;  ///< since the session was enabled
  std::uint64_t dur_ns = 0;
  std::uint64_t id = 0;        ///< span id, unique per session, never 0
  std::uint64_t parent = 0;    ///< enclosing span id; 0 = root
  std::uint64_t rec = 0;       ///< record sequence (completion order)
  std::uint32_t tid = 0;       ///< tracer-local thread index
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-wide low-overhead span tracer with a Chrome `trace_event`
/// JSON exporter (loadable in chrome://tracing and Perfetto).
///
/// Recording is off by default: a disabled tracer costs one relaxed
/// atomic load per TraceSpan construction and nothing else, so the
/// instrumentation stays compiled into release builds. When enabled,
/// each thread appends completed spans to a private buffer guarded by
/// its own (uncontended) mutex; `snapshot`/`write_chrome_json` merge the
/// buffers. Thread buffers are owned by shared_ptr so spans recorded on
/// pool workers survive until flush regardless of thread lifetime.
class Tracer {
 public:
  static Tracer& instance();

  /// Starts (or resumes) a tracing session. The first enable anchors the
  /// session clock; a disable/enable pair keeps the anchor so timestamps
  /// stay monotonic within one process.
  void enable();
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every buffered event (buffers stay registered).
  void reset();

  /// Nanoseconds since the session anchor.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Appends a completed event to the calling thread's buffer. No-op
  /// while disabled.
  void record(TraceEvent event);

  /// Merged copy of every thread's events, ordered by start time.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Incremental cursor read for the telemetry publisher: every buffered
  /// event whose record sequence is >= `min_rec`, ordered by sequence.
  /// Events are copied, never drained, so an end-of-run chrome_json()
  /// still sees the full session. Pass the returned cursor (one past the
  /// highest sequence seen) as the next call's `min_rec` to ship each
  /// completed span exactly once.
  [[nodiscard]] std::vector<TraceEvent> collect_since(
      std::uint64_t min_rec, std::uint64_t* next_cursor) const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}) of the current
  /// buffers, with one thread_name metadata record per thread.
  [[nodiscard]] std::string chrome_json() const;
  [[nodiscard]] Status write_chrome_json(const std::string& path) const;

  /// The calling thread's innermost open span id (0 = none). Captured by
  /// ThreadPool::parallel_for so worker-side spans parent correctly.
  [[nodiscard]] static std::uint64_t current_span();

  /// Fresh session-unique span id.
  [[nodiscard]] std::uint64_t next_span_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  friend class TraceSpan;
  friend class TraceParentScope;

  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  Tracer() = default;
  ThreadBuffer& local_buffer();
  /// Installs `span` as the calling thread's innermost span, returning
  /// the previous value for the caller to restore.
  static std::uint64_t exchange_current(std::uint64_t span);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_rec_{1};
  std::atomic<bool> anchored_{false};
  std::chrono::steady_clock::time_point anchor_{};
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII scoped span: records one TraceEvent covering its lifetime and
/// maintains the thread-local parent chain. Construction with the tracer
/// disabled is free (no id allocation, no clock read) and such a span
/// stays inert even if tracing is enabled before it closes.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "dfmres");
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span is actually recording (tracer was enabled at
  /// construction). Guard arg computation with it when the value is not
  /// already at hand.
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

  void arg(const char* key, std::string value);
  void arg(const char* key, const char* value);
  void arg(const char* key, std::uint64_t value);
  void arg(const char* key, int value);
  void arg(const char* key, double value);

 private:
  bool active_ = false;
  const char* name_;
  const char* cat_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t prev_current_ = 0;
  std::uint64_t start_ns_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Installs an inherited parent span for the calling thread's lifetime
/// of the scope — how a ThreadPool worker nests its spans under the span
/// that submitted the job. Passing 0 (no parent / tracing disabled) is a
/// cheap no-op that still restores correctly.
class TraceParentScope {
 public:
  explicit TraceParentScope(std::uint64_t parent)
      : prev_(Tracer::exchange_current(parent)) {}
  ~TraceParentScope() { Tracer::exchange_current(prev_); }
  TraceParentScope(const TraceParentScope&) = delete;
  TraceParentScope& operator=(const TraceParentScope&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace dfmres
