#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/util/cancel.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// Bounded block-based MPMC ready queue for job dispatch.
///
/// The single-atomic-counter pull the campaign scheduler used to run
/// serializes every runner on one cache line and pins dispatch to
/// manifest order, so one slow job convoys the runners behind it. This
/// queue splits the ring into blocks: producers and consumers contend
/// on a per-block cursor and only touch the global block heads once per
/// `block_size` operations, so heterogeneous jobs load-balance across
/// runners instead of convoying.
///
/// Ordering contract (the "relaxed FIFO"): positions are handed out
/// monotonically, so the *reservation* order of items is FIFO per
/// producer — one producer's pushes are always dequeued in push order —
/// while pushes from different producers interleave arbitrarily.
/// Deterministic results do not depend on dispatch order: each job's
/// output is keyed by its manifest slot and reports are rendered in
/// manifest order, which is the queue-independence argument behind the
/// `dfmres canon` byte-identity guarantee (DESIGN.md §17).
///
/// A cell whose producer has won its slot but not yet committed the
/// value is a transient hole; try_pop reports empty rather than skip
/// ahead, which keeps the per-producer guarantee exact. Blocking
/// push/pop spin with a bounded exponential backoff, so the queue has
/// no internal locks at all.
class ReadyQueue {
 public:
  /// Capacity is rounded up to a whole number of blocks (at least two
  /// blocks — the block-cursor protocol needs a distinct "next" block).
  explicit ReadyQueue(std::size_t capacity, std::size_t block_size = 64);
  ~ReadyQueue();
  ReadyQueue(const ReadyQueue&) = delete;
  ReadyQueue& operator=(const ReadyQueue&) = delete;

  /// Non-blocking: false when the queue is full (backpressure) or
  /// closed. Never spuriously fails on contention alone.
  [[nodiscard]] bool try_push(std::uint64_t value);

  /// Non-blocking: false when no committed item is reservable right
  /// now (empty, or a transient producer hole at the head).
  [[nodiscard]] bool try_pop(std::uint64_t* value);

  /// Blocking push: waits for space. kUnavailable after close(),
  /// kCancelled/kDeadlineExceeded when `cancel` trips.
  [[nodiscard]] Status push(std::uint64_t value,
                            const CancelToken* cancel = nullptr);

  /// Blocking pop: waits for an item. Drains remaining items after
  /// close(), then returns kUnavailable; kCancelled/kDeadlineExceeded
  /// when `cancel` trips first.
  [[nodiscard]] Expected<std::uint64_t> pop(const CancelToken* cancel = nullptr);

  /// Closes the queue: subsequent pushes fail, poppers drain what is
  /// left and then unblock. Idempotent.
  void close();
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Committed-minus-consumed estimate; exact when quiescent.
  [[nodiscard]] std::size_t size_approx() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t block_size() const { return block_size_; }

 private:
  struct Cell {
    /// Vyukov-style sequence over absolute positions: `pos` = free for
    /// the producer of position pos, `pos + 1` = committed and
    /// consumable, `pos + capacity` = freed for the next round.
    std::atomic<std::uint64_t> seq;
    std::uint64_t value;
  };

  struct alignas(64) Block {
    /// Next absolute position a producer in this block allocates.
    /// Monotonic: n*B .. (n+1)*B for round-n use, then re-armed to
    /// (n+nb)*B when the producer head wraps back around.
    std::atomic<std::uint64_t> palloc{0};
    /// Consumer-side mirror of palloc (next position to reserve).
    std::atomic<std::uint64_t> creserve{0};
  };

  [[nodiscard]] Cell& cell_at(std::uint64_t pos) {
    return cells_[pos % capacity_];
  }
  [[nodiscard]] std::uint64_t block_end(std::uint64_t block) const {
    return (block + 1) * block_size_;
  }

  std::size_t capacity_ = 0;
  std::size_t block_size_ = 0;
  std::size_t num_blocks_ = 0;
  std::unique_ptr<Cell[]> cells_;
  std::unique_ptr<Block[]> blocks_;
  /// Absolute block numbers of the current producer / consumer block.
  alignas(64) std::atomic<std::uint64_t> phead_{0};
  alignas(64) std::atomic<std::uint64_t> chead_{0};
  /// Lifetime push/pop totals, for size_approx and admission control.
  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace dfmres
