#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfmres {

/// Disjoint-set forest with union by size and path compression.
/// Used for merging subsets of structurally adjacent undetectable faults
/// (paper Section II) and for net connectivity checks.
class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(std::size_t n) { reset(n); }

  void reset(std::size_t n);

  /// Representative of x's set.
  [[nodiscard]] std::uint32_t find(std::uint32_t x);

  /// Merge the sets containing a and b. Returns false iff already merged.
  bool merge(std::uint32_t a, std::uint32_t b);

  [[nodiscard]] bool same(std::uint32_t a, std::uint32_t b) {
    return find(a) == find(b);
  }

  /// Number of elements in x's set.
  [[nodiscard]] std::uint32_t size_of(std::uint32_t x) {
    return size_[find(x)];
  }

  [[nodiscard]] std::size_t num_elements() const { return parent_.size(); }
  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_sets_ = 0;
};

}  // namespace dfmres
