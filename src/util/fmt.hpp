#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace dfmres {

/// va_list flavour of strfmt, for forwarding from other variadic
/// functions (the logger). Leaves `args` consumed, like vsnprintf.
inline std::string vstrfmt(const char* fmt, std::va_list args) {
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args2);
  va_end(args2);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  return out;
}

/// printf-style std::string formatting (GCC 12's libstdc++ has no
/// <format> yet; this is the project-wide substitute).
[[gnu::format(printf, 1, 2)]] inline std::string strfmt(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::string out = vstrfmt(fmt, args);
  va_end(args);
  return out;
}

}  // namespace dfmres
