#pragma once

#include <cstdint>

namespace dfmres {

/// xoshiro256** — fast, high-quality 64-bit PRNG with a deterministic
/// splitmix64 seeding path. All randomized components of the flow
/// (placement annealing, pattern generation, benchmark circuit
/// generation) take an explicit Rng so runs are reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the full state.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool flip() { return (next() & 1) != 0; }

  /// Bernoulli with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace dfmres
