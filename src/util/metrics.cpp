#include "src/util/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "src/util/json.hpp"

namespace dfmres {

void MetricsRegistry::add(std::string_view counter, std::uint64_t delta) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set_gauge(std::string_view gauge, double value) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(gauge);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(gauge), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view histogram, double value) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(histogram);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(histogram), RunningStats{}).first;
  }
  it->second.add(value);
}

void MetricsRegistry::sample(std::string_view series, double x, double y) {
  std::lock_guard lock(mutex_);
  auto it = series_.find(series);
  if (it == series_.end()) {
    it = series_.emplace(std::string(series), std::vector<MetricSample>{})
             .first;
  }
  it->second.push_back(MetricSample{x, y});
}

void MetricsRegistry::absorb(const AtpgCounters& counters,
                             std::string_view prefix) {
  const std::string p(prefix);
  add(p + "patterns_simulated", counters.patterns_simulated);
  add(p + "detect_mask_calls", counters.detect_mask_calls);
  add(p + "propagation_events", counters.propagation_events);
  add(p + "podem_backtracks", counters.podem_backtracks);
  add(p + "replay_drops", counters.replay_drops);
  add(p + "podem_targets_skipped", counters.podem_targets_skipped);
  add(p + "cancelled_targets", counters.cancelled_targets);
  add(p + "frame_bytes_materialized", counters.frame_bytes_materialized);
  add(p + "full_loads", counters.full_loads);
  add(p + "overlay_loads", counters.overlay_loads);
  add(p + "overlay_dirty_nets", counters.overlay_dirty_nets);
  add(p + "overlay_verified_batches", counters.overlay_verified_batches);
  add(p + "overlay_verify_mismatches", counters.overlay_verify_mismatches);
  observe(p + "load_seconds", counters.load_seconds);
  observe(p + "phase0_seconds", counters.phase0_seconds);
  observe(p + "phase1_seconds", counters.phase1_seconds);
  observe(p + "phase2_seconds", counters.phase2_seconds);
  observe(p + "phase3_seconds", counters.phase3_seconds);
  set_gauge(p + "threads_used", counters.threads_used);
  set_gauge(p + "sim_words", counters.sim_words);
}

void MetricsRegistry::merge(const MetricsRegistry& shard) {
  // Copy the shard under its own lock first; taking both locks at once
  // invites lock-order inversion if two registries ever merge into each
  // other.
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, RunningStats, std::less<>> histograms;
  std::map<std::string, std::vector<MetricSample>, std::less<>> series;
  {
    std::lock_guard lock(shard.mutex_);
    counters = shard.counters_;
    gauges = shard.gauges_;
    histograms = shard.histograms_;
    series = shard.series_;
  }
  std::lock_guard lock(mutex_);
  for (const auto& [name, v] : counters) counters_[name] += v;
  for (const auto& [name, v] : gauges) gauges_[name] = v;
  for (const auto& [name, v] : histograms) histograms_[name].merge(v);
  for (const auto& [name, v] : series) {
    auto& dst = series_[name];
    dst.insert(dst.end(), v.begin(), v.end());
    std::stable_sort(dst.begin(), dst.end(),
                     [](const MetricSample& a, const MetricSample& b) {
                       return a.x < b.x;
                     });
  }
}

Status MetricsRegistry::merge_json(const JsonValue& doc) {
  const auto bad = [](const char* what) {
    return make_status(StatusCode::kInvalidArgument,
                       "metrics document: %s", what);
  };
  if (!doc.is_object()) return bad("not an object");
  // Stage into a private registry first so a mid-document parse error
  // leaves this registry untouched, then reuse the deterministic merge.
  MetricsRegistry staged;
  for (const auto& [section, body] : doc.members()) {
    if (!body.is_object()) return bad("section is not an object");
    if (section == "counters") {
      for (const auto& [name, v] : body.members()) {
        if (!v.is_number() || v.as_number() < 0) return bad("bad counter");
        staged.counters_[name] = static_cast<std::uint64_t>(v.as_number());
      }
    } else if (section == "gauges") {
      for (const auto& [name, v] : body.members()) {
        if (!v.is_number()) return bad("bad gauge");
        staged.gauges_[name] = v.as_number();
      }
    } else if (section == "histograms") {
      for (const auto& [name, v] : body.members()) {
        const JsonValue* count = v.find("count");
        const JsonValue* sum = v.find("sum");
        const JsonValue* min = v.find("min");
        const JsonValue* max = v.find("max");
        if (count == nullptr || !count->is_number() ||
            count->as_number() < 0 || sum == nullptr || !sum->is_number() ||
            min == nullptr || !min->is_number() || max == nullptr ||
            !max->is_number()) {
          return bad("bad histogram");
        }
        staged.histograms_[name] = RunningStats::restore(
            static_cast<std::size_t>(count->as_number()), sum->as_number(),
            min->as_number(), max->as_number());
      }
    } else if (section == "series") {
      for (const auto& [name, points] : body.members()) {
        if (!points.is_array()) return bad("bad series");
        auto& dst = staged.series_[name];
        for (const JsonValue& p : points.items()) {
          if (!p.is_array() || p.items().size() != 2 ||
              !p.items()[0].is_number() || !p.items()[1].is_number()) {
            return bad("bad series point");
          }
          dst.push_back(
              MetricSample{p.items()[0].as_number(), p.items()[1].as_number()});
        }
      }
    } else {
      return bad("unknown section");
    }
  }
  merge(staged);
  return Status::ok();
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

RunningStats MetricsRegistry::histogram_stats(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? RunningStats{} : it->second;
}

std::vector<MetricSample> MetricsRegistry::series(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = series_.find(name);
  return it == series_.end() ? std::vector<MetricSample>{} : it->second;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : counters_) w.field(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : gauges_) w.field(name, v);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, v] : histograms_) {
    w.key(name);
    w.begin_object();
    w.field("count", static_cast<std::uint64_t>(v.count()));
    w.field("sum", v.sum());
    w.field("min", v.min());
    w.field("max", v.max());
    w.field("mean", v.mean());
    w.end_object();
  }
  w.end_object();
  w.key("series");
  w.begin_object();
  for (const auto& [name, points] : series_) {
    w.key(name);
    w.begin_array();
    for (const MetricSample& p : points) {
      w.begin_array();
      w.value(p.x);
      w.value(p.y);
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

Status MetricsRegistry::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return make_status(StatusCode::kInvalidArgument,
                       "cannot open metrics output '%s'", path.c_str());
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return make_status(StatusCode::kDataLoss,
                       "short write to metrics output '%s'", path.c_str());
  }
  return Status::ok();
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace dfmres
