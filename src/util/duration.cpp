#include "src/util/duration.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace dfmres {

Expected<std::chrono::nanoseconds> parse_duration_spec(std::string_view text) {
  const std::string original(text);
  const auto reject = [&original](const char* why) {
    return make_status(StatusCode::kInvalidArgument,
                       "invalid duration '%s': %s (expected a positive "
                       "duration such as 500ms, 30s or 2m)",
                       original.c_str(), why);
  };
  double scale_s = 1.0;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    scale_s = 1e-3;
    text.remove_suffix(2);
  } else if (!text.empty() && text.back() == 's') {
    text.remove_suffix(1);
  } else if (!text.empty() && text.back() == 'm') {
    scale_s = 60.0;
    text.remove_suffix(1);
  }
  const std::string body(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(body.c_str(), &end);
  if (body.empty() || end != body.c_str() + body.size()) {
    return reject("not a number");
  }
  // strtod reports overflow via ERANGE with ±HUGE_VAL; an explicit "inf"
  // or "nan" parses cleanly, so check the value too. Note v <= 0 also
  // catches ERANGE underflow (denormal-or-zero), which rounds to a zero
  // deadline — meaning "no deadline" to every consumer, never intended.
  if (std::isnan(v)) return reject("not a number");
  if (errno == ERANGE || std::isinf(v)) return reject("out of range");
  if (v <= 0) return reject("must be positive");
  const double seconds = v * scale_s;
  // 1e9 seconds ≈ 31 years; anything larger is a typo, and the cast to
  // nanoseconds below would overflow Int64 around 292 years anyway.
  if (seconds > 1e9) return reject("out of range");
  // A positive value below 1ns (e.g. "1e-300s") passes every check
  // above yet truncates to a zero-length duration, which downstream
  // means "no deadline" — the opposite of what was asked for.
  if (seconds * 1e9 < 1.0) return reject("smaller than 1ns");
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(seconds));
}

}  // namespace dfmres
