#pragma once

namespace dfmres {

/// Fault-injection hook compiled into durability commit sites (checkpoint
/// append, lease claim/heartbeat, shard stage/publish, report merge).
///
/// `DFMRES_CRASH_AFTER=site:N[,site:M,...]` arms the hook: the Nth time
/// `crash_point(site)` executes for an armed site, the process SIGKILLs
/// itself — no destructors, no atexit, no flushing — emulating a power
/// cut or OOM-kill immediately *after* that commit completed. Sites this
/// build knows about:
///
///   ckpt.append    after a checkpoint journal record is fsync'd
///   lease.claim    after a lease epoch file is published
///   lease.heartbeat after a heartbeat refresh is written
///   shard.stage    after a job's shard content is rendered
///   shard.publish  after a shard file is published
///   merge          after the merged campaign report is written
///   job.start      after a worker claimed a job, before any work
///   telemetry.publish after a telemetry snapshot file is published
///
/// Unarmed (env var unset) the hook is one relaxed atomic load. Counting
/// is process-wide and thread-safe; the chaos harness relies on the Nth
/// hit being exact, so sites must not be called from signal handlers.
void crash_point(const char* site);

/// Re-reads DFMRES_CRASH_AFTER, replacing any armed state. crash_point
/// parses the environment only once per process, and a fork inherits
/// the parent's parsed (possibly unarmed) snapshot — a forked test
/// child that wants crash points armed from a setenv done after that
/// first parse must call this before running. Not thread-safe against
/// concurrent crash_point callers in flight; call it while the process
/// is quiescent (e.g. right after fork()).
void crash_point_rearm_from_env();

}  // namespace dfmres
