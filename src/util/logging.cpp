#include "src/util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "src/util/fmt.hpp"

namespace dfmres {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<LogSink> g_sink{nullptr};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

/// Seconds since the first log call, from the monotonic clock so the
/// timestamps line up with trace spans rather than wall-clock jumps.
double monotonic_seconds() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       anchor)
      .count();
}

/// Small dense thread label; std::this_thread::get_id() prints as an
/// opaque pointer-sized number that is useless for eyeballing logs.
std::uint32_t thread_label() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t label =
      next.fetch_add(1, std::memory_order_relaxed);
  return label;
}

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (level < g_level.load()) return;
  // Format the whole line first, then hand it to the sink in one call:
  // separate stdio writes interleave when workers log concurrently.
  std::string line = strfmt("[%10.6f] [t%u] [%s] ", monotonic_seconds(),
                            thread_label(), level_name(level));
  line += vstrfmt(fmt, args);
  line += '\n';
  if (LogSink sink = g_sink.load()) {
    sink(line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }
void set_log_sink(LogSink sink) { g_sink.store(sink); }

void log(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

#define DFMRES_LOG_IMPL(name, level)            \
  void name(const char* fmt, ...) {             \
    std::va_list args;                          \
    va_start(args, fmt);                        \
    vlog(level, fmt, args);                     \
    va_end(args);                               \
  }

DFMRES_LOG_IMPL(log_debug, LogLevel::Debug)
DFMRES_LOG_IMPL(log_info, LogLevel::Info)
DFMRES_LOG_IMPL(log_warn, LogLevel::Warn)
DFMRES_LOG_IMPL(log_error, LogLevel::Error)

#undef DFMRES_LOG_IMPL

}  // namespace dfmres
