#include "src/util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace dfmres {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

#define DFMRES_LOG_IMPL(name, level)            \
  void name(const char* fmt, ...) {             \
    std::va_list args;                          \
    va_start(args, fmt);                        \
    vlog(level, fmt, args);                     \
    va_end(args);                               \
  }

DFMRES_LOG_IMPL(log_debug, LogLevel::Debug)
DFMRES_LOG_IMPL(log_info, LogLevel::Info)
DFMRES_LOG_IMPL(log_warn, LogLevel::Warn)
DFMRES_LOG_IMPL(log_error, LogLevel::Error)

#undef DFMRES_LOG_IMPL

}  // namespace dfmres
