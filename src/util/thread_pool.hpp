#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/cancel.hpp"

namespace dfmres {

/// Persistent pool of `std::jthread` workers executing chunked
/// parallel-for jobs from a shared task queue. Built for the ATPG
/// engine's fault-simulation fan-outs but generic: `parallel_for`
/// divides `[0, n)` into `grain`-sized chunks that workers claim from an
/// atomic cursor (work-stealing-ish dynamic scheduling — a slow chunk
/// never stalls the others), and the calling thread participates as
/// worker 0, so a pool never idles its caller.
///
/// Determinism contract: the pool guarantees nothing about chunk
/// assignment order. Callers that need bit-identical results across
/// thread counts (the ATPG engine does) must write results into
/// per-item slots and reduce serially afterwards.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller is the extra thread).
  /// `num_threads <= 1` creates no workers; `parallel_for` then runs
  /// inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes of execution including the caller.
  [[nodiscard]] int size() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs `fn(lane, begin, end)` over chunks of `[0, n)` with
  /// `end - begin <= grain`. `lane` is a job-local index in
  /// `[0, min(max_workers, size()))`, 0 being the calling thread, so
  /// callers can pre-size one scratch slot per lane; at most
  /// `max_workers` lanes (caller included) touch the job, and
  /// `max_workers <= 1` degenerates to a serial loop on the caller.
  /// Blocks until every chunk has completed. Calling `parallel_for` from
  /// inside `fn` (i.e. from a pool lane) never re-enters the pool: the
  /// nested call degenerates to an inline serial loop on the current
  /// lane, so a job-level fan-out (campaign) composing with inner ATPG
  /// fan-outs cannot deadlock or oversubscribe. An expired `cancel`
  /// token stops further chunks from being claimed (chunks already
  /// running finish; the items they would have covered are silently
  /// skipped — only callers that discard cancelled results may pass it).
  void parallel_for(std::size_t n, std::size_t grain, int max_workers,
                    const std::function<void(int, std::size_t, std::size_t)>& fn,
                    const CancelToken* cancel = nullptr);

  /// True while the current thread is executing a chunk for this
  /// process's pools (any of them); nested `parallel_for` calls observe
  /// it and run inline.
  [[nodiscard]] static bool in_pool_lane();

  /// `requested <= 0` resolves to `hardware_concurrency` (min 1).
  [[nodiscard]] static int resolve_threads(int requested);

  /// Two-level budget split: the inner fan-out width each of `jobs`
  /// concurrent jobs may use so `jobs * inner <= max(total, jobs)`.
  /// Never returns less than 1.
  [[nodiscard]] static int lanes_per_job(int total, int jobs);

  /// Process-wide pool sized to the hardware, created on first use and
  /// shared by every ATPG invocation (workers are parked between jobs,
  /// so idle cost is negligible).
  [[nodiscard]] static ThreadPool& shared();

 private:
  struct Job {
    std::function<void(int, std::size_t, std::size_t)> fn;
    std::size_t n = 0;
    std::size_t grain = 1;
    const CancelToken* cancel = nullptr;
    std::uint64_t trace_parent = 0;  ///< submitting span, inherited by lanes
    std::atomic<std::size_t> next{0};
    std::atomic<int> in_flight{0};
    std::atomic<int> slots{0};  ///< extra workers still allowed to join
    std::atomic<int> lane{1};   ///< next job-local lane id (0 = caller)
  };

  void worker_loop(std::stop_token stop);
  void run_chunks(Job& job, int lane);

  std::mutex mutex_;
  std::condition_variable_any cv_;        ///< workers wait for a new job
  std::condition_variable cv_done_;       ///< caller waits for completion
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  std::vector<std::jthread> workers_;
};

}  // namespace dfmres
