#pragma once

#include <chrono>
#include <string_view>

#include "src/util/status.hpp"

namespace dfmres {

/// Parses a duration spec: "<n>ms", "<n>s", "<n>m", or a bare "<n>"
/// meaning seconds. The value must be finite, strictly positive, and at
/// most 1e9 seconds; negative, zero, NaN, infinite and overflowing specs
/// are kInvalidArgument (naming the offending spec verbatim) rather than
/// silently wrapping into a bogus deadline. Shared by the
/// campaign-manifest parser and the CLI flag parsers.
[[nodiscard]] Expected<std::chrono::nanoseconds> parse_duration_spec(
    std::string_view text);

}  // namespace dfmres
