#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace dfmres {

/// Strongly typed 32-bit index. `Tag` distinguishes unrelated id spaces at
/// compile time so a GateId cannot be passed where a NetId is expected.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

  static constexpr Id invalid() { return Id{}; }

 private:
  value_type value_ = kInvalid;
};

struct GateTag {};
struct NetTag {};
struct CellTag {};
struct FaultTag {};
struct PatternTag {};

using GateId = Id<GateTag>;
using NetId = Id<NetTag>;
using CellId = Id<CellTag>;
using FaultId = Id<FaultTag>;
using PatternId = Id<PatternTag>;

}  // namespace dfmres

namespace std {
template <typename Tag>
struct hash<dfmres::Id<Tag>> {
  size_t operator()(dfmres::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
