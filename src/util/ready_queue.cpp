#include "src/util/ready_queue.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace dfmres {

namespace {

/// Spin-then-sleep backoff for the blocking entry points. Jobs on this
/// queue run for seconds, so parking in the hundreds-of-microseconds
/// range costs nothing while keeping the idle queue cold.
struct Backoff {
  int spins = 0;
  void pause() {
    if (spins < 64) {
      ++spins;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(
        std::min(1000, (spins < 1024 ? spins : 1024))));
    spins = std::min(spins * 2, 4096);
  }
};

}  // namespace

ReadyQueue::ReadyQueue(std::size_t capacity, std::size_t block_size) {
  block_size_ = std::max<std::size_t>(1, block_size);
  num_blocks_ = std::max<std::size_t>(
      2, (std::max<std::size_t>(1, capacity) + block_size_ - 1) / block_size_);
  capacity_ = num_blocks_ * block_size_;
  cells_ = std::make_unique<Cell[]>(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    cells_[i].seq.store(static_cast<std::uint64_t>(i),
                        std::memory_order_relaxed);
  }
  blocks_ = std::make_unique<Block[]>(num_blocks_);
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    const std::uint64_t start = static_cast<std::uint64_t>(b) * block_size_;
    blocks_[b].palloc.store(start, std::memory_order_relaxed);
    blocks_[b].creserve.store(start, std::memory_order_relaxed);
  }
}

ReadyQueue::~ReadyQueue() = default;

bool ReadyQueue::try_push(std::uint64_t value) {
  if (closed_.load(std::memory_order_acquire)) return false;
  for (;;) {
    const std::uint64_t bidx = phead_.load(std::memory_order_acquire);
    Block& blk = blocks_[bidx % num_blocks_];
    const std::uint64_t pos = blk.palloc.load(std::memory_order_acquire);
    if (pos < bidx * block_size_ || pos > block_end(bidx)) {
      continue;  // stale head: the block was re-armed for a later round
    }
    if (pos == block_end(bidx)) {
      // Block exhausted: re-arm the next physical block for its new
      // round (its cursor still shows the end of round next-nb), then
      // publish the advanced head. Either CAS losing means another
      // producer did the same step.
      const std::uint64_t next = bidx + 1;
      if (next >= num_blocks_) {
        std::uint64_t expect = block_end(next - num_blocks_);
        blocks_[next % num_blocks_].palloc.compare_exchange_strong(
            expect, next * block_size_, std::memory_order_acq_rel);
      }
      std::uint64_t head = bidx;
      phead_.compare_exchange_strong(head, next, std::memory_order_acq_rel);
      continue;
    }
    Cell& cell = cell_at(pos);
    if (cell.seq.load(std::memory_order_acquire) != pos) {
      // The consumer of the previous round has not freed this cell:
      // the queue is full at its head position.
      return false;
    }
    std::uint64_t expect = pos;
    if (!blk.palloc.compare_exchange_weak(expect, pos + 1,
                                          std::memory_order_acq_rel)) {
      continue;  // another producer took pos; retry at the new cursor
    }
    cell.value = value;
    cell.seq.store(pos + 1, std::memory_order_release);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

bool ReadyQueue::try_pop(std::uint64_t* value) {
  for (;;) {
    const std::uint64_t bidx = chead_.load(std::memory_order_acquire);
    Block& blk = blocks_[bidx % num_blocks_];
    const std::uint64_t pos = blk.creserve.load(std::memory_order_acquire);
    if (pos < bidx * block_size_ || pos > block_end(bidx)) {
      continue;  // stale head
    }
    if (pos == block_end(bidx)) {
      // Block drained. Only follow the producers: if they have not
      // opened a later block there is nothing beyond this one.
      if (phead_.load(std::memory_order_acquire) <= bidx) return false;
      const std::uint64_t next = bidx + 1;
      if (next >= num_blocks_) {
        std::uint64_t expect = block_end(next - num_blocks_);
        blocks_[next % num_blocks_].creserve.compare_exchange_strong(
            expect, next * block_size_, std::memory_order_acq_rel);
      }
      std::uint64_t head = bidx;
      chead_.compare_exchange_strong(head, next, std::memory_order_acq_rel);
      continue;
    }
    Cell& cell = cell_at(pos);
    if (cell.seq.load(std::memory_order_acquire) != pos + 1) {
      // Not committed: empty, or a transient hole (a producer between
      // winning the slot and storing the value). Never skip ahead —
      // that would break the per-producer FIFO guarantee.
      return false;
    }
    std::uint64_t expect = pos;
    if (!blk.creserve.compare_exchange_weak(expect, pos + 1,
                                            std::memory_order_acq_rel)) {
      continue;  // another consumer reserved pos
    }
    *value = cell.value;
    cell.seq.store(pos + capacity_, std::memory_order_release);
    popped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

Status ReadyQueue::push(std::uint64_t value, const CancelToken* cancel) {
  Backoff backoff;
  for (;;) {
    if (closed_.load(std::memory_order_acquire)) {
      return make_status(StatusCode::kUnavailable, "ready queue is closed");
    }
    if (cancel_expired(cancel)) return cancel->to_status();
    if (try_push(value)) return Status::ok();
    backoff.pause();
  }
}

Expected<std::uint64_t> ReadyQueue::pop(const CancelToken* cancel) {
  Backoff backoff;
  for (;;) {
    std::uint64_t value = 0;
    if (try_pop(&value)) return value;
    // Check closed after the pop attempt so a close() racing the final
    // push still drains: pushes finish before close in program order.
    if (closed_.load(std::memory_order_acquire) && !try_pop(&value)) {
      return make_status(StatusCode::kUnavailable,
                         "ready queue is closed and drained");
    }
    if (cancel_expired(cancel)) return cancel->to_status();
    backoff.pause();
  }
}

void ReadyQueue::close() { closed_.store(true, std::memory_order_release); }

std::size_t ReadyQueue::size_approx() const {
  const std::uint64_t pushed = pushed_.load(std::memory_order_relaxed);
  const std::uint64_t popped = popped_.load(std::memory_order_relaxed);
  return pushed > popped ? static_cast<std::size_t>(pushed - popped) : 0;
}

}  // namespace dfmres
