#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/fmt.hpp"

namespace dfmres {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

RunningStats RunningStats::restore(std::size_t count, double sum, double min,
                                   double max) {
  RunningStats s;
  if (count == 0) return s;
  s.count_ = count;
  s.sum_ = sum;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double RunningStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double percentile(std::span<const double> values, double pct) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::vector<std::size_t> histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> out(bins, 0);
  if (bins == 0 || hi <= lo) return out;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    auto bin = static_cast<long>(std::floor((v - lo) / width));
    bin = std::clamp(bin, 0L, static_cast<long>(bins) - 1);
    ++out[static_cast<std::size_t>(bin)];
  }
  return out;
}

void AtpgCounters::merge(const AtpgCounters& other) {
  patterns_simulated += other.patterns_simulated;
  detect_mask_calls += other.detect_mask_calls;
  propagation_events += other.propagation_events;
  podem_backtracks += other.podem_backtracks;
  replay_drops += other.replay_drops;
  podem_targets_skipped += other.podem_targets_skipped;
  cancelled_targets += other.cancelled_targets;
  frame_bytes_materialized += other.frame_bytes_materialized;
  full_loads += other.full_loads;
  overlay_loads += other.overlay_loads;
  overlay_dirty_nets += other.overlay_dirty_nets;
  overlay_verified_batches += other.overlay_verified_batches;
  overlay_verify_mismatches += other.overlay_verify_mismatches;
  load_seconds += other.load_seconds;
  phase0_seconds += other.phase0_seconds;
  phase1_seconds += other.phase1_seconds;
  phase2_seconds += other.phase2_seconds;
  phase3_seconds += other.phase3_seconds;
  threads_used = std::max(threads_used, other.threads_used);
  sim_words = std::max(sim_words, other.sim_words);
}

std::string AtpgCounters::summary() const {
  return strfmt(
      "atpg: %llu patterns, %llu detect_mask calls, %llu prop events, "
      "%llu backtracks, %llu replay drops, %llu podem skips, "
      "%llu cancelled, loads %llu full + %llu overlay (%llu frame bytes), "
      "phases %.3f/%.3f/%.3f/%.3fs, %d thread%s, W=%d lanes",
      static_cast<unsigned long long>(patterns_simulated),
      static_cast<unsigned long long>(detect_mask_calls),
      static_cast<unsigned long long>(propagation_events),
      static_cast<unsigned long long>(podem_backtracks),
      static_cast<unsigned long long>(replay_drops),
      static_cast<unsigned long long>(podem_targets_skipped),
      static_cast<unsigned long long>(cancelled_targets),
      static_cast<unsigned long long>(full_loads),
      static_cast<unsigned long long>(overlay_loads),
      static_cast<unsigned long long>(frame_bytes_materialized),
      phase0_seconds, phase1_seconds, phase2_seconds, phase3_seconds,
      threads_used, threads_used == 1 ? "" : "s", sim_words);
}

std::string AtpgCounters::json() const {
  return strfmt(
      "{\"patterns_simulated\": %llu, \"detect_mask_calls\": %llu, "
      "\"propagation_events\": %llu, \"podem_backtracks\": %llu, "
      "\"replay_drops\": %llu, \"podem_targets_skipped\": %llu, "
      "\"cancelled_targets\": %llu, "
      "\"frame_bytes_materialized\": %llu, \"full_loads\": %llu, "
      "\"overlay_loads\": %llu, \"overlay_dirty_nets\": %llu, "
      "\"overlay_verified_batches\": %llu, "
      "\"overlay_verify_mismatches\": %llu, \"load_seconds\": %.6f, "
      "\"phase0_seconds\": %.6f, \"phase1_seconds\": %.6f, "
      "\"phase2_seconds\": %.6f, \"phase3_seconds\": %.6f, "
      "\"threads_used\": %d, \"sim_words\": %d}",
      static_cast<unsigned long long>(patterns_simulated),
      static_cast<unsigned long long>(detect_mask_calls),
      static_cast<unsigned long long>(propagation_events),
      static_cast<unsigned long long>(podem_backtracks),
      static_cast<unsigned long long>(replay_drops),
      static_cast<unsigned long long>(podem_targets_skipped),
      static_cast<unsigned long long>(cancelled_targets),
      static_cast<unsigned long long>(frame_bytes_materialized),
      static_cast<unsigned long long>(full_loads),
      static_cast<unsigned long long>(overlay_loads),
      static_cast<unsigned long long>(overlay_dirty_nets),
      static_cast<unsigned long long>(overlay_verified_batches),
      static_cast<unsigned long long>(overlay_verify_mismatches),
      load_seconds, phase0_seconds, phase1_seconds, phase2_seconds,
      phase3_seconds, threads_used, sim_words);
}

}  // namespace dfmres
