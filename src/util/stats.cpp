#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dfmres {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double RunningStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double percentile(std::span<const double> values, double pct) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::vector<std::size_t> histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> out(bins, 0);
  if (bins == 0 || hi <= lo) return out;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    auto bin = static_cast<long>(std::floor((v - lo) / width));
    bin = std::clamp(bin, 0L, static_cast<long>(bins) - 1);
    ++out[static_cast<std::size_t>(bin)];
  }
  return out;
}

}  // namespace dfmres
