#include "src/util/status.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "src/util/logging.hpp"

namespace dfmres {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kUnsatisfiable: return "unsatisfiable";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDataLoss: return "data_loss";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace {

std::string vformat(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (n <= 0) return {};
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

}  // namespace

Status make_status(StatusCode code, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string message = vformat(fmt, args);
  va_end(args);
  return {code, std::move(message)};
}

void fatal_invariant(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  const std::string message = vformat(fmt, args);
  va_end(args);
  log_error("fatal invariant breach: %s", message.c_str());
  std::abort();
}

}  // namespace dfmres
