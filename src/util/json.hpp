#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/fmt.hpp"

namespace dfmres {

/// Escapes a string for inclusion between JSON double quotes.
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal streaming JSON writer used by the observability outputs
/// (trace, metrics, run reports). Emits compact standards-compliant
/// JSON: keys in insertion order, non-finite doubles as null (strict
/// parsers reject NaN/Infinity literals). The caller is responsible for
/// balanced begin/end calls; there is deliberately no DOM.
class JsonWriter {
 public:
  void begin_object() {
    separate();
    out_ += '{';
    first_.push_back(true);
  }
  void end_object() {
    out_ += '}';
    first_.pop_back();
  }
  void begin_array() {
    separate();
    out_ += '[';
    first_.push_back(true);
  }
  void end_array() {
    out_ += ']';
    first_.pop_back();
  }

  void key(std::string_view k) {
    separate();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    after_key_ = true;
  }

  void value(std::string_view v) {
    separate();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    separate();
    out_ += v ? "true" : "false";
  }
  void value(double v) {
    separate();
    out_ += std::isfinite(v) ? strfmt("%.12g", v) : "null";
  }
  void value(std::uint64_t v) {
    separate();
    out_ += strfmt("%llu", static_cast<unsigned long long>(v));
  }
  void value(std::int64_t v) {
    separate();
    out_ += strfmt("%lld", static_cast<long long>(v));
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }

  /// Pre-rendered JSON (an already-serialized sub-document).
  void raw(std::string_view json) {
    separate();
    out_ += json;
  }

  template <typename T>
  void field(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  /// Emits the separating comma for the second and later elements of the
  /// enclosing container; a value directly after its key never needs one.
  void separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (first_.empty()) return;
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }

  std::string out_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace dfmres
