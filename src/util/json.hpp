#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/fmt.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// Escapes a string for inclusion between JSON double quotes.
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal streaming JSON writer used by the observability outputs
/// (trace, metrics, run reports). Emits compact standards-compliant
/// JSON: keys in insertion order, non-finite doubles as null (strict
/// parsers reject NaN/Infinity literals). The caller is responsible for
/// balanced begin/end calls; there is deliberately no DOM.
class JsonWriter {
 public:
  void begin_object() {
    separate();
    out_ += '{';
    first_.push_back(true);
  }
  void end_object() {
    out_ += '}';
    first_.pop_back();
  }
  void begin_array() {
    separate();
    out_ += '[';
    first_.push_back(true);
  }
  void end_array() {
    out_ += ']';
    first_.pop_back();
  }

  void key(std::string_view k) {
    separate();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    after_key_ = true;
  }

  void value(std::string_view v) {
    separate();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    separate();
    out_ += v ? "true" : "false";
  }
  void value(double v) {
    separate();
    out_ += std::isfinite(v) ? strfmt("%.12g", v) : "null";
  }
  void value(std::uint64_t v) {
    separate();
    out_ += strfmt("%llu", static_cast<unsigned long long>(v));
  }
  void value(std::int64_t v) {
    separate();
    out_ += strfmt("%lld", static_cast<long long>(v));
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }

  /// Pre-rendered JSON (an already-serialized sub-document).
  void raw(std::string_view json) {
    separate();
    out_ += json;
  }

  template <typename T>
  void field(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  /// Emits the separating comma for the second and later elements of the
  /// enclosing container; a value directly after its key never needs one.
  void separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (first_.empty()) return;
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }

  std::string out_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

/// Parsed JSON document node, the reading counterpart of JsonWriter.
/// Built for the trusted-but-fallible inputs of the stack (campaign
/// manifests, report round-trips in tests): strict RFC 8259 subset, no
/// comments or trailing commas, objects keep insertion order and reject
/// duplicate keys. Numbers are doubles (the writer never emits anything
/// an IEEE double cannot hold).
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  /// Parses one complete document; trailing non-whitespace is an error.
  /// Failures are kInvalidArgument with a line:column locator.
  [[nodiscard]] static Expected<JsonValue> parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; calling the wrong one is a programmer error
  /// (fatal_invariant), so branch on kind() / is_*() first.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

  /// Object member lookup; null when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace dfmres
