#pragma once

#include <optional>
#include <string>
#include <utility>

namespace dfmres {

/// Canonical error space for every fallible operation in the stack.
/// Codes are coarse on purpose: callers branch on the code (is this a
/// constraint miss I can search past, a cancellation, or corruption?)
/// and humans read the message.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,    ///< malformed input: parse errors, bad flag values
  kNotFound,           ///< named entity absent: cell, benchmark, file
  kFailedPrecondition, ///< state mismatch: checkpoint vs options/design
  kUnsatisfiable,      ///< no solution under constraints: banned-subset
                       ///< mapping, die too full for an edit
  kAlreadyExists,      ///< exclusive create lost: the name is taken
                       ///< (lease epochs, shard publish)
  kDeadlineExceeded,   ///< cooperative deadline expiry
  kCancelled,          ///< explicit cancellation request
  kDataLoss,           ///< corrupt or truncated persistent record
  kUnavailable,        ///< resource held elsewhere right now (journal
                       ///< lock); retrying later can succeed
  kInternal,           ///< invariant breach surfaced instead of aborted
  kResourceExhausted,  ///< admission control: quota or queue bound hit;
                       ///< the request was rejected, not queued
};

[[nodiscard]] const char* status_code_name(StatusCode code);

/// Error (or success) descriptor: a code plus a human-readable message
/// with context. Default-constructed Status is OK.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  /// "data_loss: journal record 12: bad checksum"
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// printf-style Status builder.
[[nodiscard]] [[gnu::format(printf, 2, 3)]] Status make_status(
    StatusCode code, const char* fmt, ...);

/// The one deliberate process-abort in the codebase: logs the message
/// and calls std::abort(). Reserved for internal invariants that are
/// unreachable through any validated input — everything reachable from
/// user input must return a Status instead.
[[noreturn]] [[gnu::format(printf, 1, 2)]] void fatal_invariant(
    const char* fmt, ...);

/// A value or a Status, with std::optional-compatible accessors so call
/// sites written against optional-returning APIs keep reading naturally
/// (`if (!r) ...; use(*r)`). `value()` on an error is a programmer
/// error and trips fatal_invariant with the carried status.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.is_ok()) {
      fatal_invariant("Expected constructed from an OK status");
    }
  }

  [[nodiscard]] bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& operator*() & { return *value_; }
  [[nodiscard]] const T& operator*() const& { return *value_; }
  [[nodiscard]] T&& operator*() && { return *std::move(value_); }
  [[nodiscard]] T* operator->() { return &*value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }

  [[nodiscard]] T& value() & {
    require_value();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    require_value();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    require_value();
    return *std::move(value_);
  }

  /// OK when has_value().
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] StatusCode code() const { return status_.code(); }

 private:
  void require_value() const {
    if (!value_.has_value()) {
      fatal_invariant("Expected::value() on error: %s",
                      status_.to_string().c_str());
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace dfmres
