#include "src/util/union_find.hpp"

#include <numeric>

namespace dfmres {

void UnionFind::reset(std::size_t n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), 0u);
  size_.assign(n, 1u);
  num_sets_ = n;
}

std::uint32_t UnionFind::find(std::uint32_t x) {
  std::uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    std::uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::merge(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --num_sets_;
  return true;
}

}  // namespace dfmres
