#pragma once

#include <atomic>
#include <chrono>

#include "src/util/status.hpp"

namespace dfmres {

/// A wall-clock budget expressed as a steady-clock point. Separate from
/// CancelToken so budgets can be computed, compared, and narrowed
/// ("whichever comes first") without touching cancellation state.
struct Deadline {
  std::chrono::steady_clock::time_point at{};
  bool armed = false;

  [[nodiscard]] static Deadline never() { return {}; }
  [[nodiscard]] static Deadline after(std::chrono::nanoseconds budget) {
    return {std::chrono::steady_clock::now() + budget, true};
  }
  [[nodiscard]] bool passed() const {
    return armed && std::chrono::steady_clock::now() >= at;
  }
};

/// Cooperative cancellation: long-running work polls `expired()` at
/// coarse boundaries (per ATPG target, per ladder rung, every N PODEM
/// backtracks, per thread-pool chunk) and unwinds cleanly when it turns
/// true. A token trips either explicitly via `cancel()` (any thread),
/// implicitly when its deadline passes, or when its parent token trips
/// (a campaign-wide token fanning into per-job tokens); once tripped it
/// stays tripped (the result is latched so steady-state polls are one
/// relaxed atomic load). A parent must outlive every child linked to it.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline, const CancelToken* parent = nullptr)
      : deadline_(deadline), parent_(parent) {}

  [[nodiscard]] static CancelToken with_deadline(
      std::chrono::nanoseconds budget) {
    return CancelToken(Deadline::after(budget));
  }

  /// Explicit cancellation; safe from any thread.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancelled, past the deadline, or the parent tripped.
  /// Const because polling is semantically a read; the latch is an
  /// optimization.
  [[nodiscard]] bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_.passed() || (parent_ != nullptr && parent_->expired())) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  [[nodiscard]] bool has_deadline() const {
    return deadline_.armed || (parent_ != nullptr && parent_->has_deadline());
  }

  /// The status an operation should propagate when it unwinds on this
  /// token: deadline_exceeded for a timed budget (own or inherited),
  /// cancelled otherwise.
  [[nodiscard]] Status to_status() const {
    return has_deadline()
               ? make_status(StatusCode::kDeadlineExceeded,
                             "deadline exceeded")
               : make_status(StatusCode::kCancelled, "cancelled");
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  Deadline deadline_{};
  const CancelToken* parent_ = nullptr;
};

/// Null-safe poll for optional-token plumbing.
[[nodiscard]] inline bool cancel_expired(const CancelToken* token) {
  return token != nullptr && token->expired();
}

}  // namespace dfmres
