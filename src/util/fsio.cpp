#include "src/util/fsio.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__linux__)
#include <sys/syscall.h>
#ifndef RENAME_NOREPLACE
#define RENAME_NOREPLACE (1 << 0)
#endif
#endif

namespace dfmres {

namespace {

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status errno_status(const char* op, const std::string& path) {
  return make_status(StatusCode::kInternal, "%s '%s': %s", op, path.c_str(),
                     std::strerror(errno));
}

}  // namespace

Status fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_dir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return errno_status("cannot open directory", dir);
  const bool ok = ::fsync(fd) == 0;
  const int saved = errno;
  ::close(fd);
  if (!ok) {
    errno = saved;
    return errno_status("cannot fsync directory", dir);
  }
  return Status::ok();
}

Status make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0) {
    if (errno == EEXIST) return Status::ok();
    return make_status(StatusCode::kInvalidArgument,
                       "cannot create directory '%s': %s", path.c_str(),
                       std::strerror(errno));
  }
  return fsync_parent_dir(path);
}

Status rename_durable(const std::string& tmp, const std::string& path) {
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return errno_status("cannot rename into", path);
  }
  return fsync_parent_dir(path);
}

Status rename_noreplace(const std::string& tmp, const std::string& path) {
#if defined(__linux__) && defined(SYS_renameat2)
  if (::syscall(SYS_renameat2, AT_FDCWD, tmp.c_str(), AT_FDCWD, path.c_str(),
                RENAME_NOREPLACE) == 0) {
    return fsync_parent_dir(path);
  }
  if (errno == EEXIST) {
    return make_status(StatusCode::kAlreadyExists, "'%s' already exists",
                       path.c_str());
  }
  if (errno != EINVAL && errno != ENOSYS) {
    return errno_status("cannot rename into", path);
  }
  // Old kernel / filesystem without RENAME_NOREPLACE: fall through.
#endif
  // link() never replaces an existing name, which gives the same
  // exactly-once guarantee; the temp link is then dropped.
  if (::link(tmp.c_str(), path.c_str()) != 0) {
    if (errno == EEXIST) {
      return make_status(StatusCode::kAlreadyExists, "'%s' already exists",
                         path.c_str());
    }
    return errno_status("cannot link into", path);
  }
  ::unlink(tmp.c_str());
  return fsync_parent_dir(path);
}

namespace {

Status write_tmp(const std::string& tmp, std::string_view data) {
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_status("cannot create", tmp);
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = errno_status("cannot write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status s = errno_status("cannot fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  ::close(fd);
  return Status::ok();
}

}  // namespace

Status write_file_atomic(const std::string& path, std::string_view data,
                         std::string_view tmp_tag) {
  const std::string tmp =
      path + ".tmp." + std::string(tmp_tag.empty() ? "w" : tmp_tag);
  if (Status s = write_tmp(tmp, data); !s.is_ok()) return s;
  Status s = rename_durable(tmp, path);
  if (!s.is_ok()) ::unlink(tmp.c_str());
  return s;
}

Status write_file_exclusive(const std::string& path, std::string_view data,
                            std::string_view tmp_tag) {
  const std::string tmp =
      path + ".tmp." + std::string(tmp_tag.empty() ? "w" : tmp_tag);
  if (Status s = write_tmp(tmp, data); !s.is_ok()) return s;
  Status s = rename_noreplace(tmp, path);
  if (!s.is_ok()) ::unlink(tmp.c_str());
  return s;
}

Expected<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_status(StatusCode::kNotFound, "cannot open '%s'",
                       path.c_str());
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

bool path_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

Expected<std::vector<std::string>> list_dir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) {
      return make_status(StatusCode::kNotFound, "no directory '%s'",
                         path.c_str());
    }
    return errno_status("cannot open directory", path);
  }
  std::vector<std::string> names;
  errno = 0;
  while (const struct dirent* entry = ::readdir(dir)) {
    const char* name = entry->d_name;
    if (std::strcmp(name, ".") == 0 || std::strcmp(name, "..") == 0) continue;
    names.emplace_back(name);
    errno = 0;
  }
  const int saved = errno;
  ::closedir(dir);
  if (saved != 0) {
    errno = saved;
    return errno_status("cannot read directory", path);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dfmres
