#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dfmres {

/// Streaming accumulator for min / max / mean over doubles.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile (0..100) of a sample by nearest-rank; copies and sorts.
[[nodiscard]] double percentile(std::span<const double> values, double pct);

/// Histogram with fixed-width bins over [lo, hi); out-of-range values clamp
/// to the first/last bin.
[[nodiscard]] std::vector<std::size_t> histogram(
    std::span<const double> values, double lo, double hi, std::size_t bins);

}  // namespace dfmres
