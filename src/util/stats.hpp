#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dfmres {

/// Streaming accumulator for min / max / mean over doubles.
class RunningStats {
 public:
  void add(double x);

  /// Folds another accumulator in, as if its samples had been added
  /// here (order-independent up to floating-point sum rounding).
  void merge(const RunningStats& other);

  /// Rebuilds an accumulator from its serialized aggregate (the
  /// {count,sum,min,max} quadruple is the complete state; mean is
  /// derived). Used when importing metrics shards from JSON.
  [[nodiscard]] static RunningStats restore(std::size_t count, double sum,
                                            double min, double max);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile (0..100) of a sample by nearest-rank; copies and sorts.
[[nodiscard]] double percentile(std::span<const double> values, double pct);

/// Histogram with fixed-width bins over [lo, hi); out-of-range values clamp
/// to the first/last bin.
[[nodiscard]] std::vector<std::size_t> histogram(
    std::span<const double> values, double lo, double hi, std::size_t bins);

/// Instrumentation counters for one `run_atpg` invocation. Workers
/// accumulate into private copies (or plain per-instance counters) and
/// merge after each parallel section, so the hot loops never touch a
/// contended cache line; the merged totals land in `AtpgResult::counters`
/// and are printed by the CLI and the benches.
struct AtpgCounters {
  std::uint64_t patterns_simulated = 0;   ///< test frames loaded into lanes
  std::uint64_t detect_mask_calls = 0;    ///< per-fault simulation queries
  std::uint64_t propagation_events = 0;   ///< faulty-value net updates
  std::uint64_t podem_backtracks = 0;     ///< deterministic-search backtracks
  std::uint64_t replay_drops = 0;         ///< faults dropped by seed replay
  std::uint64_t podem_targets_skipped = 0;///< cone-untouched cached targets
  std::uint64_t cancelled_targets = 0;    ///< left Unknown by cancellation
  std::uint64_t frame_bytes_materialized = 0;  ///< good-frame bytes written
  std::uint64_t full_loads = 0;           ///< O(netlist) batch loads
  std::uint64_t overlay_loads = 0;        ///< O(cone) copy-on-write loads
  std::uint64_t overlay_dirty_nets = 0;   ///< dirty slots over overlay loads
  std::uint64_t overlay_verified_batches = 0;  ///< verify-mode comparisons
  std::uint64_t overlay_verify_mismatches = 0; ///< overlay ≠ full reload
  double load_seconds = 0.0;              ///< wall time inside batch loads
  double phase0_seconds = 0.0;            ///< seed test replay (warm start)
  double phase1_seconds = 0.0;            ///< random patterns + dropping
  double phase2_seconds = 0.0;            ///< PODEM + per-test drop sweeps
  double phase3_seconds = 0.0;            ///< reverse-order compaction
  int threads_used = 1;                   ///< resolved worker lane count
  int sim_words = 1;                      ///< SimWord width W of the kernel

  void merge(const AtpgCounters& other);
  [[nodiscard]] double total_seconds() const {
    return phase0_seconds + phase1_seconds + phase2_seconds + phase3_seconds;
  }
  /// One human-readable line for CLI / bench stdout.
  [[nodiscard]] std::string summary() const;
  /// JSON object (no trailing newline) for BENCH_*.json records.
  [[nodiscard]] std::string json() const;
};

}  // namespace dfmres
