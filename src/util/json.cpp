#include "src/util/json.hpp"

#include <cstdlib>

namespace dfmres {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) fatal_invariant("JsonValue::as_bool on non-bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) {
    fatal_invariant("JsonValue::as_number on non-number");
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) {
    fatal_invariant("JsonValue::as_string on non-string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::Array) fatal_invariant("JsonValue::items on non-array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::Object) {
    fatal_invariant("JsonValue::members on non-object");
  }
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// Recursive-descent parser over a string_view; positions are tracked so
/// errors carry a line:column locator into the offending manifest.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Expected<JsonValue> run() {
    JsonValue root;
    Status s = value(root, /*depth=*/0);
    if (!s.is_ok()) return s;
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters");
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status error(const char* what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return make_status(StatusCode::kInvalidArgument, "json %zu:%zu: %s", line,
                       col, what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool eat_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return object(out, depth);
      case '[':
        return array(out, depth);
      case '"':
        out.kind_ = JsonValue::Kind::String;
        return string(out.string_);
      case 't':
        if (!eat_word("true")) return error("invalid literal");
        out.kind_ = JsonValue::Kind::Bool;
        out.bool_ = true;
        return Status::ok();
      case 'f':
        if (!eat_word("false")) return error("invalid literal");
        out.kind_ = JsonValue::Kind::Bool;
        out.bool_ = false;
        return Status::ok();
      case 'n':
        if (!eat_word("null")) return error("invalid literal");
        out.kind_ = JsonValue::Kind::Null;
        return Status::ok();
      default:
        return number(out);
    }
  }

  Status object(JsonValue& out, int depth) {
    (void)eat('{');
    out.kind_ = JsonValue::Kind::Object;
    skip_ws();
    if (eat('}')) return Status::ok();
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected object key");
      }
      std::string key;
      if (Status s = string(key); !s.is_ok()) return s;
      for (const auto& [k, v] : out.members_) {
        if (k == key) return error("duplicate object key");
      }
      skip_ws();
      if (!eat(':')) return error("expected ':' after key");
      JsonValue member;
      if (Status s = value(member, depth + 1); !s.is_ok()) return s;
      out.members_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return Status::ok();
      return error("expected ',' or '}' in object");
    }
  }

  Status array(JsonValue& out, int depth) {
    (void)eat('[');
    out.kind_ = JsonValue::Kind::Array;
    skip_ws();
    if (eat(']')) return Status::ok();
    for (;;) {
      JsonValue item;
      if (Status s = value(item, depth + 1); !s.is_ok()) return s;
      out.items_.push_back(std::move(item));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return Status::ok();
      return error("expected ',' or ']' in array");
    }
  }

  Status string(std::string& out) {
    (void)eat('"');
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) return error("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by JsonWriter; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return error("unknown escape sequence");
      }
    }
    return error("unterminated string");
  }

  Status number(JsonValue& out) {
    const std::size_t start = pos_;
    (void)eat('-');
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return error("invalid value");
    }
    // RFC 8259: a leading zero stands alone ("01" is not a number).
    if (eat('0')) {
      if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        return error("leading zero in number");
      }
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (eat('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return error("digit expected after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return error("digit expected in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    out.kind_ = JsonValue::Kind::Number;
    // The grammar above admits exactly strtod's subject sequence.
    out.number_ = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                              nullptr);
    return Status::ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Expected<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

}  // namespace dfmres
