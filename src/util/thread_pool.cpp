#include "src/util/thread_pool.hpp"

#include <algorithm>

#include "src/util/trace.hpp"

namespace dfmres {

namespace {
/// Set while the thread is inside run_chunks (or the inline serial
/// fallback) so nested parallel_for calls degenerate instead of
/// re-entering the pool.
thread_local bool t_in_pool_lane = false;

struct LaneScope {
  bool prev;
  LaneScope() : prev(t_in_pool_lane) { t_in_pool_lane = true; }
  ~LaneScope() { t_in_pool_lane = prev; }
};
}  // namespace

bool ThreadPool::in_pool_lane() { return t_in_pool_lane; }

ThreadPool::ThreadPool(int num_threads) {
  const int extra = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int w = 0; w < extra; ++w) {
    workers_.emplace_back([this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& worker : workers_) worker.request_stop();
  cv_.notify_all();
  // ~jthread joins; workers_ is destroyed before mutex_/cv_ (reverse
  // member order), so the loop never touches a dead synchronizer.
}

void ThreadPool::worker_loop(std::stop_token stop) {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  while (true) {
    if (!cv_.wait(lock, stop, [&] { return generation_ != seen; })) {
      return;  // stop requested while parked
    }
    seen = generation_;
    std::shared_ptr<Job> job = job_;
    if (!job) continue;
    // Respect the job's lane budget; late or surplus workers stand down.
    if (job->slots.fetch_sub(1) <= 0) continue;
    const int lane = job->lane.fetch_add(1);
    lock.unlock();
    run_chunks(*job, lane);
    lock.lock();
  }
}

void ThreadPool::run_chunks(Job& job, int lane) {
  job.in_flight.fetch_add(1);
  LaneScope in_lane;
  // Inherit the submitting span so worker-side spans parent under it in
  // the trace; one span covers this lane's whole share of the job.
  TraceParentScope trace_parent(job.trace_parent);
  TraceSpan span("pool.chunks", "pool");
  if (span.active()) span.arg("lane", lane);
  for (;;) {
    // Claim a chunk before polling cancel: once the cursor is exhausted
    // the caller may return and destroy the (caller-stack) token, so a
    // late-waking lane must establish that work remains — which implies
    // the caller is still blocked in parallel_for — before touching
    // job.cancel.
    const std::size_t begin = job.next.fetch_add(job.grain);
    if (begin >= job.n) break;
    if (cancel_expired(job.cancel)) {
      // Park the cursor at the end so the other lanes (and the caller's
      // completion predicate) see an exhausted job.
      job.next.store(job.n);
      break;
    }
    const std::size_t end = std::min(job.n, begin + job.grain);
    job.fn(lane, begin, end);
  }
  if (job.in_flight.fetch_sub(1) == 1) {
    // Last lane out: wake the caller. Taking the mutex orders the wake
    // after the caller's predicate check, so the notify cannot be lost.
    std::lock_guard lock(mutex_);
    cv_done_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain, int max_workers,
    const std::function<void(int, std::size_t, std::size_t)>& fn,
    const CancelToken* cancel) {
  if (n == 0 || cancel_expired(cancel)) return;
  grain = std::max<std::size_t>(1, grain);
  const int lanes = std::min(max_workers, size());
  if (t_in_pool_lane || lanes <= 1 || n <= grain || workers_.empty()) {
    // Inline serial fallback — also taken for nested calls from a pool
    // lane, so a lane never re-enters the pool it is running on.
    LaneScope in_lane;
    for (std::size_t begin = 0; begin < n; begin += grain) {
      if (cancel_expired(cancel)) return;
      fn(0, begin, std::min(n, begin + grain));
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->n = n;
  job->grain = grain;
  job->cancel = cancel;
  job->trace_parent = Tracer::current_span();
  job->slots.store(lanes - 1);
  {
    std::lock_guard lock(mutex_);
    job_ = job;
    ++generation_;
  }
  cv_.notify_all();

  run_chunks(*job, 0);

  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] {
    return job->next.load() >= job->n && job->in_flight.load() == 0;
  });
  // A worker that wakes after this point still holds its own shared_ptr
  // copy and finds no chunk left, so it never invokes fn again.
  if (job_ == job) job_ = nullptr;
}

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ThreadPool::lanes_per_job(int total, int jobs) {
  if (jobs <= 0) return std::max(1, total);
  return std::max(1, total / jobs);
}

ThreadPool& ThreadPool::shared() {
  // Floor of 4: parked workers are practically free, and it lets tests
  // (and TSan) exercise real cross-thread execution even on small
  // machines where hardware_concurrency() would make every sweep serial.
  static ThreadPool pool(std::max(resolve_threads(0), 4));
  return pool;
}

}  // namespace dfmres
