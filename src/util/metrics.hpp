#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/stats.hpp"
#include "src/util/status.hpp"

namespace dfmres {

class JsonValue;

/// One point of a named time series (x = step index or seconds, y =
/// the sampled value).
struct MetricSample {
  double x = 0.0;
  double y = 0.0;
};

/// Process-wide registry of named counters, gauges, histograms and time
/// series behind one uniform interface.
///
/// Hot loops keep accumulating into their plain per-worker structs
/// (AtpgCounters and friends — never a shared cache line); those structs
/// are *absorbed* into a registry at flush points. Direct add/observe
/// calls are for cold paths (per-candidate, per-phase, per-run events).
///
/// Shard model: workers that want private registries use plain
/// MetricsRegistry instances and the owner merges them serially in lane
/// order after the parallel section; merging is deterministic (counters
/// are commutative sums, histogram/series merges follow the fixed merge
/// order), so an N-shard merge equals the single-shard run bit for bit.
/// Every method is internally locked, so the global() instance can also
/// be used directly from multiple threads when determinism of iteration
/// order is not required.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to a named monotonic counter (created at 0).
  void add(std::string_view counter, std::uint64_t delta = 1);
  /// Sets a named gauge to its latest value.
  void set_gauge(std::string_view gauge, double value);
  /// Feeds one sample into a named histogram (count/sum/min/max/mean).
  void observe(std::string_view histogram, double value);
  /// Appends one (x, y) point to a named time series.
  void sample(std::string_view series, double x, double y);

  /// Publishes one run's ATPG instrumentation: integer counters under
  /// `<prefix>`, per-phase seconds as `<prefix>phaseN_seconds`
  /// histograms (sum = total across absorbed runs), threads_used as a
  /// gauge.
  void absorb(const AtpgCounters& counters, std::string_view prefix = "atpg.");

  /// Folds a shard into this registry: counters add, gauges take the
  /// shard's value, histograms merge, series append (then re-sort by x,
  /// stably, so interleaved shards land in a canonical order).
  void merge(const MetricsRegistry& shard);

  /// merge(), but from a parsed to_json() document — how campaign
  /// workers ship their registries across process boundaries inside
  /// shard files. Rejects documents that do not match the to_json()
  /// schema with kInvalidArgument; on error the registry is unchanged.
  [[nodiscard]] Status merge_json(const JsonValue& doc);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] RunningStats histogram_stats(std::string_view name) const;
  [[nodiscard]] std::vector<MetricSample> series(std::string_view name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count,sum,min,max,mean}}, "series": {name: [[x,y],...]}} with keys
  /// sorted (std::map iteration), so equal registries serialize equal.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] Status write_json(const std::string& path) const;

  void clear();

  /// Process-wide registry flushed by the CLI / bench output flags.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, RunningStats, std::less<>> histograms_;
  std::map<std::string, std::vector<MetricSample>, std::less<>> series_;
};

}  // namespace dfmres
