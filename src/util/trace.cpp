#include "src/util/trace.hpp"

#include <algorithm>

#include "src/util/fmt.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"

namespace dfmres {

namespace {

/// Innermost open span of the calling thread (0 = none). A plain value,
/// not a stack: each TraceSpan / TraceParentScope saves and restores the
/// previous value, so nesting falls out of scoping.
thread_local std::uint64_t t_current_span = 0;

std::atomic<std::uint32_t> g_next_tid{0};

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  if (!anchored_.exchange(true)) {
    anchor_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::reset() {
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::uint64_t Tracer::now_ns() const {
  if (!anchored_.load(std::memory_order_relaxed)) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor_)
          .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // The shared_ptr keeps a worker's buffer alive past thread exit (the
  // registry holds a second reference until process end), so a flush
  // after a pool shrinks still sees every event.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    fresh->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(registry_mutex_);
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void Tracer::record(TraceEvent event) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  event.rec = next_rec_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard registry_lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard lock(buffer->mutex);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                     : a.id < b.id;
                   });
  return out;
}

std::vector<TraceEvent> Tracer::collect_since(std::uint64_t min_rec,
                                              std::uint64_t* next_cursor) const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard registry_lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard lock(buffer->mutex);
      for (const TraceEvent& e : buffer->events) {
        if (e.rec >= min_rec) out.push_back(e);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.rec < b.rec;
            });
  std::uint64_t cursor = min_rec;
  if (!out.empty()) cursor = out.back().rec + 1;
  if (next_cursor != nullptr) *next_cursor = cursor;
  return out;
}

std::string Tracer::chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : events) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  for (const std::uint32_t tid : tids) {
    // Thread-name metadata records make Perfetto label the tracks.
    w.begin_object();
    w.field("ph", "M");
    w.field("name", "thread_name");
    w.field("pid", 0);
    w.field("tid", static_cast<std::uint64_t>(tid));
    w.key("args");
    w.begin_object();
    w.field("name", tid == 0 ? std::string("main") : strfmt("worker-%u", tid));
    w.end_object();
    w.end_object();
  }
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.field("ph", "X");
    w.field("name", e.name);
    w.field("cat", e.cat);
    w.field("pid", 0);
    w.field("tid", static_cast<std::uint64_t>(e.tid));
    // Chrome trace timestamps are microseconds.
    w.field("ts", static_cast<double>(e.start_ns) / 1e3);
    w.field("dur", static_cast<double>(e.dur_ns) / 1e3);
    w.key("args");
    w.begin_object();
    w.field("span", strfmt("%llu", static_cast<unsigned long long>(e.id)));
    if (e.parent != 0) {
      w.field("parent",
              strfmt("%llu", static_cast<unsigned long long>(e.parent)));
    }
    for (const auto& [key, value] : e.args) w.field(key, value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

Status Tracer::write_chrome_json(const std::string& path) const {
  // Atomic publish: a trace flushed on a SIGINT/SIGTERM drain (or raced
  // by a second flusher) is either absent or complete valid JSON, never
  // a truncated document chrome://tracing refuses to load.
  return write_file_atomic(path, chrome_json(), "trace");
}

std::uint64_t Tracer::current_span() { return t_current_span; }

std::uint64_t Tracer::exchange_current(std::uint64_t span) {
  const std::uint64_t prev = t_current_span;
  t_current_span = span;
  return prev;
}

TraceSpan::TraceSpan(const char* name, const char* cat)
    : name_(name), cat_(cat) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  active_ = true;
  id_ = tracer.next_span_id();
  parent_ = Tracer::current_span();
  prev_current_ = Tracer::exchange_current(id_);
  start_ns_ = tracer.now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::instance();
  TraceEvent event;
  event.name = name_;
  event.cat = cat_;
  event.start_ns = start_ns_;
  const std::uint64_t end_ns = tracer.now_ns();
  event.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  event.id = id_;
  event.parent = parent_;
  event.args = std::move(args_);
  tracer.record(std::move(event));
  Tracer::exchange_current(prev_current_);
}

void TraceSpan::arg(const char* key, std::string value) {
  if (!active_) return;
  args_.emplace_back(key, std::move(value));
}
void TraceSpan::arg(const char* key, const char* value) {
  if (!active_) return;
  args_.emplace_back(key, value);
}
void TraceSpan::arg(const char* key, std::uint64_t value) {
  if (!active_) return;
  args_.emplace_back(key,
                     strfmt("%llu", static_cast<unsigned long long>(value)));
}
void TraceSpan::arg(const char* key, int value) {
  if (!active_) return;
  args_.emplace_back(key, strfmt("%d", value));
}
void TraceSpan::arg(const char* key, double value) {
  if (!active_) return;
  args_.emplace_back(key, strfmt("%.6g", value));
}

}  // namespace dfmres
