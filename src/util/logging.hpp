#pragma once

#include <string_view>

namespace dfmres {

enum class LogLevel { Debug, Info, Warn, Error };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Receives one fully formatted log line (including the trailing '\n').
/// Lines are always delivered whole, never interleaved across threads.
using LogSink = void (*)(std::string_view line);

/// Redirects log output (tests, embedding). nullptr restores the default
/// sink, a single fwrite to stderr per line.
void set_log_sink(LogSink sink);

/// printf-style logging helpers.
[[gnu::format(printf, 2, 3)]] void log(LogLevel level, const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_debug(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_info(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_warn(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_error(const char* fmt, ...);

}  // namespace dfmres
