#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.hpp"

namespace dfmres {

/// Small POSIX filesystem-durability toolkit shared by the checkpoint
/// journal, the campaign lease protocol and the shard/report writers.
///
/// The durability rules these helpers encode:
///  - fsync of a file makes its *bytes* durable, but a file created or
///    renamed into a directory is only durably *named* after the
///    directory itself is fsync'd — otherwise a power loss can orphan a
///    fully-fsync'd file;
///  - publishing a document atomically means: write a temp file in the
///    same directory, fsync it, rename() it over the final name, then
///    fsync the directory, so observers see either the old complete
///    content or the new complete content, never a torn file.

/// fsync() of the directory containing `path` (`path` itself may or may
/// not exist). Needed after creating, renaming or unlinking an entry to
/// make the namespace change durable.
[[nodiscard]] Status fsync_parent_dir(const std::string& path);

/// Creates `path` (one level, 0755). Success when it already exists.
/// Durable: the parent directory is fsync'd after a real creation.
[[nodiscard]] Status make_dir(const std::string& path);

/// Atomic replace-rename with durability: rename(tmp, path) followed by
/// a parent-directory fsync. `tmp` must live in the same directory.
[[nodiscard]] Status rename_durable(const std::string& tmp,
                                    const std::string& path);

/// Atomic create-rename: like rename_durable but fails with
/// kAlreadyExists (leaving `tmp` in place for the caller to clean up)
/// when `path` already exists. This is the exactly-once arbiter of the
/// lease protocol: of N processes racing to publish the same name,
/// exactly one wins. Uses renameat2(RENAME_NOREPLACE) where the kernel
/// supports it, with a link()+unlink() fallback.
[[nodiscard]] Status rename_noreplace(const std::string& tmp,
                                      const std::string& path);

/// Writes `data` to `path` atomically and durably (temp file + fsync +
/// replace-rename + directory fsync). The temp name embeds `tmp_tag` so
/// concurrent writers (distinct owners) never collide on the temp file.
[[nodiscard]] Status write_file_atomic(const std::string& path,
                                       std::string_view data,
                                       std::string_view tmp_tag);

/// Like write_file_atomic, but publishing with rename_noreplace: the
/// first writer wins, later writers get kAlreadyExists (their temp file
/// is cleaned up).
[[nodiscard]] Status write_file_exclusive(const std::string& path,
                                          std::string_view data,
                                          std::string_view tmp_tag);

/// Slurps a whole file. kNotFound when it does not exist.
[[nodiscard]] Expected<std::string> read_file(const std::string& path);

/// True when `path` exists (any file type).
[[nodiscard]] bool path_exists(const std::string& path);

/// Entry names of a directory ("." and ".." excluded), sorted
/// lexicographically so callers iterate deterministically regardless of
/// on-disk order. kNotFound when the directory does not exist.
[[nodiscard]] Expected<std::vector<std::string>> list_dir(
    const std::string& path);

}  // namespace dfmres
