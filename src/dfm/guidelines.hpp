#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/switchlevel/switch_sim.hpp"

namespace dfmres {

/// The paper's three DFM guideline categories (Section IV): 19 Via
/// guidelines, 29 Metal guidelines, 11 Density guidelines. Guidelines
/// recommend width/spacing/redundancy margins; locations that violate
/// them are where systematic defects are anticipated.
enum class GuidelineCategory : std::uint8_t { Via, Metal, Density };

inline constexpr int kNumViaGuidelines = 19;
inline constexpr int kNumMetalGuidelines = 29;
inline constexpr int kNumDensityGuidelines = 11;
inline constexpr int kNumGuidelines =
    kNumViaGuidelines + kNumMetalGuidelines + kNumDensityGuidelines;

struct Guideline {
  GuidelineCategory category;
  int index_in_category;
  const char* name;
  double threshold;  ///< rule-specific parameter (lengths in gcells,
                     ///< densities as fractions, counts as counts)
};

/// All 59 guidelines; the table index is the global guideline id.
[[nodiscard]] std::span<const Guideline> all_guidelines();

/// Global id from (category, index within category).
[[nodiscard]] std::uint16_t guideline_id(GuidelineCategory category,
                                         int index);

/// Guideline anticipated to be violated by an intra-cell defect site.
/// Contact/via opens map to Via guidelines; shorts and bridges map to
/// Metal guidelines (paper refs [7-9]: guideline families apply to
/// features both inside and outside cells).
[[nodiscard]] std::uint16_t guideline_for_cell_defect(const CellDefect& d);

/// Deterministic selection of which enumerated cell defect sites are
/// actual DFM guideline violations in the cell's layout. Denser cells
/// (more transistors) violate a larger fraction of their sites, and
/// contact/via-open style sites (the strictest to detect) dominate the
/// guideline families, which is what makes complex cells carry more --
/// and harder -- internal faults.
/// `masked` marks defects whose cell-level behavior is charge-sharing
/// masked (no detecting pattern): those are precisely the marginal
/// layout configurations the via/contact guidelines warn about, so they
/// are the most likely violations.
[[nodiscard]] bool cell_defect_selected(const std::string& cell_name,
                                        std::size_t defect_index,
                                        std::size_t num_transistors,
                                        DefectKind kind, bool masked);

}  // namespace dfmres
