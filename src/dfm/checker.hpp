#pragma once

#include "src/dfm/guidelines.hpp"
#include "src/faults/fault.hpp"
#include "src/faults/udfm_map.hpp"
#include "src/place/placement.hpp"
#include "src/route/router.hpp"

namespace dfmres {

/// Number of internal DFM faults one instance of `cell` contributes (the
/// selected subset of its enumerated defect sites). This is the quantity
/// the resynthesis procedure orders library cells by (Section III-B).
[[nodiscard]] std::size_t internal_fault_count(const Library& lib,
                                               const UdfmMap& udfm,
                                               CellId cell);

/// Internal (cell-aware) faults only — the layout-independent part of
/// the universe, used to gate PDesign() during resynthesis (paper
/// Section III-B: internal faults depend only on which cells are used).
[[nodiscard]] FaultUniverse extract_internal_faults(const Netlist& nl,
                                                    const UdfmMap& udfm);

/// Scans the placed-and-routed design against all 59 DFM guidelines and
/// translates every violation into logic faults:
///  - intra-cell violations -> cell-aware (UDFM) internal faults,
///  - via opens / weak vias  -> stuck-at and transition faults,
///  - metal spacing runs     -> 4-way dominant bridge faults,
///  - density windows        -> transition faults on crossing nets.
/// Duplicate logic faults from distinct physical sites are kept (each is
/// its own violation, as in the paper's fault counts).
[[nodiscard]] FaultUniverse extract_dfm_faults(const Netlist& nl,
                                               const Placement& pl,
                                               const RoutingResult& routes,
                                               const UdfmMap& udfm);

}  // namespace dfmres
