#include "src/dfm/checker.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace dfmres {

namespace {

/// Largest guideline threshold in [first, last] (category-relative
/// indices) that `value` still violates (value >= threshold); -1 if none.
/// "Tightest family" assignment keeps one family per violation.
int tightest_family(GuidelineCategory cat, int first, int last,
                    double value) {
  const auto guidelines = all_guidelines();
  int best = -1;
  double best_threshold = -1.0;
  for (int i = first; i <= last; ++i) {
    const Guideline& g = guidelines[guideline_id(cat, i)];
    if (value >= g.threshold && g.threshold > best_threshold) {
      best_threshold = g.threshold;
      best = i;
    }
  }
  return best;
}

/// Low-side variant: violates when value <= threshold; picks smallest.
int tightest_family_low(GuidelineCategory cat, int first, int last,
                        double value) {
  const auto guidelines = all_guidelines();
  int best = -1;
  double best_threshold = 2.0;
  for (int i = first; i <= last; ++i) {
    const Guideline& g = guidelines[guideline_id(cat, i)];
    if (value <= g.threshold && g.threshold < best_threshold) {
      best_threshold = g.threshold;
      best = i;
    }
  }
  return best;
}

}  // namespace

std::size_t internal_fault_count(const Library& lib, const UdfmMap& udfm,
                                 CellId cell) {
  const CellSpec& spec = lib.cell(cell);
  const CellUdfm& cu = udfm.of(cell);
  std::size_t count = 0;
  for (std::size_t i = 0; i < cu.faults.size(); ++i) {
    if (cell_defect_selected(spec.name, i, spec.network.transistors.size(),
                             cu.faults[i].defect.kind,
                             cu.faults[i].patterns.empty())) {
      ++count;
    }
  }
  return count;
}

FaultUniverse extract_internal_faults(const Netlist& nl,
                                      const UdfmMap& udfm) {
  FaultUniverse universe;
  for (GateId g : nl.live_gates()) {
    const CellSpec& spec = nl.cell_of(g);
    if (spec.sequential || spec.network.empty()) continue;
    const CellUdfm& cu = udfm.of(nl.gate(g).cell);
    for (std::size_t i = 0; i < cu.faults.size(); ++i) {
      if (!cell_defect_selected(spec.name, i,
                                spec.network.transistors.size(),
                                cu.faults[i].defect.kind,
                                cu.faults[i].patterns.empty())) {
        continue;
      }
      Fault f;
      f.kind = FaultKind::CellAware;
      f.scope = FaultScope::Internal;
      f.owner = g;
      f.victim = nl.gate(g).outputs[0];
      f.cell_output = 0;
      f.udfm_index = static_cast<std::uint32_t>(i);
      f.guideline = guideline_for_cell_defect(cu.faults[i].defect);
      universe.faults.push_back(f);
      // Charge-sharing-masked sites sit at marginal geometries that
      // co-violate the sibling guidelines of their family; each
      // violation is counted (ATPG collapses the duplicates by key).
      if (cu.faults[i].patterns.empty()) {
        for (int extra = 1; extra <= 2; ++extra) {
          Fault dup = f;
          dup.guideline = guideline_for_cell_defect(
              {cu.faults[i].defect.kind,
               static_cast<std::uint16_t>(cu.faults[i].defect.a + extra),
               cu.faults[i].defect.b});
          universe.faults.push_back(dup);
        }
      }
    }
  }
  return universe;
}

FaultUniverse extract_dfm_faults(const Netlist& nl, const Placement& pl,
                                 const RoutingResult& routes,
                                 const UdfmMap& udfm) {
  FaultUniverse universe = extract_internal_faults(nl, udfm);
  auto& out = universe.faults;

  // Multiple physical sites can violate the same guideline on the same
  // net; the fault list (like a production ATPG fault list) carries one
  // logic fault per distinct (net, guideline) target.
  std::unordered_set<std::uint64_t> seen;
  const auto push_pair = [&](FaultKind kind, NetId net,
                             std::uint16_t guideline) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(net.value()) << 8) | guideline;
    if (!seen.insert(key).second) return;
    for (const bool v : {false, true}) {
      Fault f;
      f.kind = kind;
      f.scope = FaultScope::External;
      f.victim = net;
      f.value = v;
      f.guideline = guideline;
      out.push_back(f);
    }
  };

  // ---- Via guidelines on the routed design ----
  for (const Via& via : routes.vias) {
    const double wl = routes.nets[via.net.value()].wirelength;
    if (!via.redundant) {
      if (const int fam = tightest_family(GuidelineCategory::Via, 11, 14, wl);
          fam >= 0) {
        push_pair(FaultKind::Transition, via.net,
                  guideline_id(GuidelineCategory::Via, fam));
      }
      if (via.at_segment_end) {
        if (const int fam =
                tightest_family(GuidelineCategory::Via, 17, 18, wl);
            fam >= 0) {
          push_pair(FaultKind::StuckAt, via.net,
                    guideline_id(GuidelineCategory::Via, fam));
        }
      }
    }
  }
  for (NetId net : nl.live_nets()) {
    const NetRoute& nr = routes.nets[net.value()];
    if (const int fam = tightest_family(GuidelineCategory::Via, 15, 16,
                                        nr.num_vias);
        fam >= 0) {
      push_pair(FaultKind::Transition, net,
                guideline_id(GuidelineCategory::Via, fam));
    }
    // Metal: long narrow wires (opens) and congested jogs (resistive).
    if (const int fam = tightest_family(GuidelineCategory::Metal, 24, 26,
                                        nr.wirelength);
        fam >= 0) {
      push_pair(FaultKind::StuckAt, net,
                guideline_id(GuidelineCategory::Metal, fam));
    }
    if (const int fam = tightest_family(GuidelineCategory::Metal, 27, 28,
                                        nr.max_congestion_pct / 100.0);
        fam >= 0) {
      push_pair(FaultKind::Transition, net,
                guideline_id(GuidelineCategory::Metal, fam));
    }
  }

  // ---- Metal parallel-run bridges ----
  {
    // Group segments by (orientation, line).
    std::unordered_map<std::uint64_t, std::vector<const RouteSegment*>> lines;
    for (const RouteSegment& s : routes.segments) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(s.horizontal) << 32) |
          static_cast<std::uint32_t>(s.fixed);
      lines[key].push_back(&s);
    }
    for (auto& [key, segs] : lines) {
      std::sort(segs.begin(), segs.end(),
                [](const RouteSegment* a, const RouteSegment* b) {
                  return a->lo < b->lo;
                });
      for (std::size_t i = 0; i < segs.size(); ++i) {
        for (std::size_t j = i + 1; j < segs.size(); ++j) {
          const RouteSegment& a = *segs[i];
          const RouteSegment& b = *segs[j];
          if (b.lo > a.hi) break;  // sorted by lo: no further overlaps
          if (a.net == b.net) continue;
          const int track_a = routes.track_of(a.net);
          const int track_b = routes.track_of(b.net);
          if (std::abs(track_a - track_b) != 1) continue;  // not adjacent
          const int overlap = std::min(a.hi, b.hi) - std::max(a.lo, b.lo) + 1;
          const int fam = tightest_family(GuidelineCategory::Metal, 18, 23,
                                          overlap);
          if (fam < 0) continue;
          const std::uint16_t gid =
              guideline_id(GuidelineCategory::Metal, fam);
          const std::uint64_t pair_key =
              (static_cast<std::uint64_t>(
                   std::min(a.net.value(), b.net.value()))
               << 40) |
              (static_cast<std::uint64_t>(
                   std::max(a.net.value(), b.net.value()))
               << 8) |
              gid;
          if (!seen.insert(pair_key).second) continue;
          for (const BridgeType type : {BridgeType::DomAnd, BridgeType::DomOr}) {
            for (const bool victim_is_a : {true, false}) {
              Fault f;
              f.kind = FaultKind::Bridge;
              f.scope = FaultScope::External;
              f.victim = victim_is_a ? a.net : b.net;
              f.aggressor = victim_is_a ? b.net : a.net;
              f.bridge_type = type;
              f.guideline = gid;
              out.push_back(f);
            }
          }
        }
      }
    }
  }

  // ---- Density windows ----
  {
    // Per-gcell cell occupancy from the placement.
    const int gw = routes.grid_w, gh = routes.grid_h;
    const int gcell_sites = routes.options.gcell_sites *
                            routes.options.gcell_rows;
    std::vector<double> occupancy(static_cast<std::size_t>(gw) * gh, 0.0);
    for (GateId g : nl.live_gates()) {
      const auto& p = pl.of(g);
      if (!p.valid()) continue;
      const int gx = std::clamp(p.x / routes.options.gcell_sites, 0, gw - 1);
      const int gy = std::clamp(p.y / routes.options.gcell_rows, 0, gh - 1);
      occupancy[routes.cell(gx, gy)] +=
          static_cast<double>(nl.cell_of(g).width_sites) / gcell_sites;
    }
    // Nets present per gcell (deduplicated via last-writer check).
    std::vector<std::vector<NetId>> nets_in(static_cast<std::size_t>(gw) * gh);
    for (const RouteSegment& s : routes.segments) {
      for (int t = s.lo; t <= s.hi; ++t) {
        const int x = s.horizontal ? t : s.fixed;
        const int y = s.horizontal ? s.fixed : t;
        auto& bucket = nets_in[routes.cell(x, y)];
        if (bucket.empty() || bucket.back() != s.net) bucket.push_back(s.net);
      }
    }

    constexpr int kWindow = 4, kStride = 2;
    const double cap2 = 2.0 * routes.options.capacity_per_layer;
    for (int wy = 0; wy < gh; wy += kStride) {
      for (int wx = 0; wx < gw; wx += kStride) {
        const int x1 = std::min(wx + kWindow, gw);
        const int y1 = std::min(wy + kWindow, gh);
        double util = 0.0, wiring = 0.0;
        int cells = 0;
        std::unordered_map<std::uint32_t, int> net_gcells;
        for (int y = wy; y < y1; ++y) {
          for (int x = wx; x < x1; ++x) {
            const std::size_t c = routes.cell(x, y);
            util += occupancy[c];
            wiring += (routes.h_usage[c] + routes.v_usage[c]) / cap2;
            ++cells;
            for (NetId n : nets_in[c]) ++net_gcells[n.value()];
          }
        }
        if (cells == 0) continue;
        util /= cells;
        wiring /= cells;

        int fam_high = tightest_family(GuidelineCategory::Density, 0, 3, util);
        int fam_low =
            tightest_family_low(GuidelineCategory::Density, 4, 7, util);
        int fam_wiring =
            tightest_family(GuidelineCategory::Density, 8, 10, wiring);
        for (const int fam : {fam_high, fam_low, fam_wiring}) {
          if (fam < 0) continue;
          const std::uint16_t gid =
              guideline_id(GuidelineCategory::Density, fam);
          for (const auto& [net_value, count] : net_gcells) {
            if (count < 2) continue;  // only wires really inside the window
            push_pair(FaultKind::Transition, NetId{net_value}, gid);
          }
        }
      }
    }
  }

  return universe;
}

}  // namespace dfmres
