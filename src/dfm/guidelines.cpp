#include "src/dfm/guidelines.hpp"

#include <array>
#include <cassert>

namespace dfmres {

namespace {

constexpr GuidelineCategory V = GuidelineCategory::Via;
constexpr GuidelineCategory M = GuidelineCategory::Metal;
constexpr GuidelineCategory D = GuidelineCategory::Density;

/// The master guideline table. Thresholds for route-level rules are in
/// gcell units; density rules use utilization fractions. Intra-cell
/// rules (threshold 0) are matched structurally by defect kind.
constexpr std::array<Guideline, kNumGuidelines> kGuidelines = {{
    // ---- Via category (19) ----
    {V, 0, "via.cell.contact_open.a", 0},
    {V, 1, "via.cell.contact_open.b", 0},
    {V, 2, "via.cell.contact_open.c", 0},
    {V, 3, "via.cell.contact_open.d", 0},
    {V, 4, "via.cell.contact_open.e", 0},
    {V, 5, "via.cell.contact_open.f", 0},
    {V, 6, "via.cell.poly_contact.a", 0},
    {V, 7, "via.cell.poly_contact.b", 0},
    {V, 8, "via.cell.poly_contact.c", 0},
    {V, 9, "via.cell.finger_contact.a", 0},
    {V, 10, "via.cell.finger_contact.b", 0},
    {V, 11, "via.route.single_via_long_wire.10", 10},
    {V, 12, "via.route.single_via_long_wire.20", 20},
    {V, 13, "via.route.single_via_long_wire.40", 40},
    {V, 14, "via.route.single_via_long_wire.80", 80},
    {V, 15, "via.route.via_count.4", 4},
    {V, 16, "via.route.via_count.7", 7},
    {V, 17, "via.route.end_of_line_enclosure.15", 15},
    {V, 18, "via.route.end_of_line_enclosure.45", 45},
    // ---- Metal category (29) ----
    {M, 0, "metal.cell.channel_short.a", 0},
    {M, 1, "metal.cell.channel_short.b", 0},
    {M, 2, "metal.cell.channel_short.c", 0},
    {M, 3, "metal.cell.channel_short.d", 0},
    {M, 4, "metal.cell.channel_short.e", 0},
    {M, 5, "metal.cell.channel_short.f", 0},
    {M, 6, "metal.cell.channel_short.g", 0},
    {M, 7, "metal.cell.channel_short.h", 0},
    {M, 8, "metal.cell.node_bridge.a", 0},
    {M, 9, "metal.cell.node_bridge.b", 0},
    {M, 10, "metal.cell.node_bridge.c", 0},
    {M, 11, "metal.cell.node_bridge.d", 0},
    {M, 12, "metal.cell.node_bridge.e", 0},
    {M, 13, "metal.cell.node_bridge.f", 0},
    {M, 14, "metal.cell.rail_short_vdd.a", 0},
    {M, 15, "metal.cell.rail_short_vdd.b", 0},
    {M, 16, "metal.cell.rail_short_gnd.a", 0},
    {M, 17, "metal.cell.rail_short_gnd.b", 0},
    {M, 18, "metal.route.parallel_run.6", 6},
    {M, 19, "metal.route.parallel_run.8", 8},
    {M, 20, "metal.route.parallel_run.10", 10},
    {M, 21, "metal.route.parallel_run.12", 12},
    {M, 22, "metal.route.parallel_run.16", 16},
    {M, 23, "metal.route.parallel_run.20", 20},
    {M, 24, "metal.route.narrow_long_wire.30", 30},
    {M, 25, "metal.route.narrow_long_wire.60", 60},
    {M, 26, "metal.route.narrow_long_wire.120", 120},
    {M, 27, "metal.route.congested_jog.70", 0.70},
    {M, 28, "metal.route.congested_jog.90", 0.90},
    // ---- Density category (11) ----
    {D, 0, "density.window.high.78", 0.78},
    {D, 1, "density.window.high.84", 0.84},
    {D, 2, "density.window.high.90", 0.90},
    {D, 3, "density.window.high.95", 0.95},
    {D, 4, "density.window.low.25", 0.25},
    {D, 5, "density.window.low.18", 0.18},
    {D, 6, "density.window.low.12", 0.12},
    {D, 7, "density.window.low.06", 0.06},
    {D, 8, "density.wiring.60", 0.60},
    {D, 9, "density.wiring.75", 0.75},
    {D, 10, "density.wiring.90", 0.90},
}};

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::span<const Guideline> all_guidelines() { return kGuidelines; }

std::uint16_t guideline_id(GuidelineCategory category, int index) {
  switch (category) {
    case GuidelineCategory::Via:
      assert(index < kNumViaGuidelines);
      return static_cast<std::uint16_t>(index);
    case GuidelineCategory::Metal:
      assert(index < kNumMetalGuidelines);
      return static_cast<std::uint16_t>(kNumViaGuidelines + index);
    case GuidelineCategory::Density:
      assert(index < kNumDensityGuidelines);
      return static_cast<std::uint16_t>(kNumViaGuidelines +
                                        kNumMetalGuidelines + index);
  }
  return 0;
}

std::uint16_t guideline_for_cell_defect(const CellDefect& d) {
  switch (d.kind) {
    case DefectKind::TransistorStuckOpen:
      return guideline_id(GuidelineCategory::Via, d.a % 6);
    case DefectKind::PinOpen:
      return guideline_id(GuidelineCategory::Via, 6 + d.a % 3);
    case DefectKind::DriveFingerOpen:
      return guideline_id(GuidelineCategory::Via, 9 + d.a % 2);
    case DefectKind::TransistorStuckOn:
      return guideline_id(GuidelineCategory::Metal, d.a % 8);
    case DefectKind::NodeBridge:
      return guideline_id(GuidelineCategory::Metal, 8 + d.a % 6);
    case DefectKind::NodeShortToVdd:
      return guideline_id(GuidelineCategory::Metal, 14 + d.a % 2);
    case DefectKind::NodeShortToGnd:
      return guideline_id(GuidelineCategory::Metal, 16 + d.a % 2);
  }
  return 0;
}

bool cell_defect_selected(const std::string& cell_name,
                          std::size_t defect_index,
                          std::size_t num_transistors, DefectKind kind,
                          bool masked) {
  // Violation fraction grows with cell density: small cells have clean,
  // guideline-conforming layouts; dense multi-stack cells cannot satisfy
  // every recommendation. Contact/via opens and internal bridges are the
  // dominant guideline families.
  const double base =
      std::min(0.80, 0.12 + 0.022 * static_cast<double>(num_transistors));
  double weight = 1.0;
  switch (kind) {
    case DefectKind::TransistorStuckOpen: weight = 1.7; break;
    case DefectKind::NodeBridge: weight = 1.4; break;
    case DefectKind::PinOpen: weight = 1.0; break;
    case DefectKind::DriveFingerOpen: weight = 1.0; break;
    case DefectKind::TransistorStuckOn: weight = 0.6; break;
    case DefectKind::NodeShortToVdd:
    case DefectKind::NodeShortToGnd: weight = 0.5; break;
  }
  if (masked) weight *= 2.5;  // marginal geometry: likeliest violation
  const double fraction = std::min(0.92, base * weight);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : cell_name) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  h = splitmix(h ^ (defect_index * 0x9e3779b97f4a7c15ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < fraction;
}

}  // namespace dfmres
