#include "src/switchlevel/switch_sim.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace dfmres {

namespace {

enum class Conduction : std::uint8_t { Off, On, Maybe };

constexpr std::uint16_t kGnd = TransistorNetwork::kGnd;
constexpr std::uint16_t kVdd = TransistorNetwork::kVdd;

struct RepMap {
  std::vector<std::uint16_t> parent;

  explicit RepMap(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), std::uint16_t{0});
  }
  std::uint16_t find(std::uint16_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  /// Merge, preferring rails (then lower index) as the root so that rail
  /// identity survives bridging defects.
  void merge(std::uint16_t a, std::uint16_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b == kGnd || b == kVdd || (a != kGnd && a != kVdd && b < a)) {
      std::swap(a, b);
    }
    parent[b] = a;
  }
};

/// Per-node driver reachability flags for one logic value.
struct Reach {
  std::vector<bool> strong;  ///< definite path, full-swing devices only
  std::vector<bool> any;     ///< definite path, possibly degraded
  std::vector<bool> maybe;   ///< path through uncertain (X-gate) devices

  explicit Reach(std::size_t n) : strong(n), any(n), maybe(n) {}
};

}  // namespace

SwitchSim::SwitchSim(const TransistorNetwork& network) : network_(network) {}

std::vector<SwitchValue> SwitchSim::eval(
    std::uint32_t pattern, const CellDefect* defect,
    std::span<const SwitchValue> prev) const {
  const auto& nw = network_;
  const std::size_t n = nw.num_nodes;
  RepMap reps(n);

  // Apply topology-changing defects.
  if (defect) {
    switch (defect->kind) {
      case DefectKind::NodeShortToVdd: reps.merge(defect->a, kVdd); break;
      case DefectKind::NodeShortToGnd: reps.merge(defect->a, kGnd); break;
      case DefectKind::NodeBridge: reps.merge(defect->a, defect->b); break;
      default: break;
    }
  }

  // Pinned values: rails and input pins are driver sources. A rep merged
  // with a rail takes the rail value.
  std::vector<SwitchValue> value(n, SwitchValue::X);
  std::vector<bool> pinned(n, false);
  auto pin = [&](std::uint16_t node, SwitchValue v) {
    const std::uint16_t r = reps.find(node);
    if (!pinned[r]) {
      value[r] = v;
      pinned[r] = true;
    }
  };
  pin(kGnd, SwitchValue::Zero);
  pin(kVdd, SwitchValue::One);
  for (std::size_t i = 0; i < nw.input_nodes.size(); ++i) {
    pin(nw.input_nodes[i],
        ((pattern >> i) & 1u) ? SwitchValue::One : SwitchValue::Zero);
  }

  // Per-transistor adjacency on representatives.
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (std::uint32_t t = 0; t < nw.transistors.size(); ++t) {
    adjacency[reps.find(nw.transistors[t].source_node)].push_back(t);
    adjacency[reps.find(nw.transistors[t].drain_node)].push_back(t);
  }

  std::vector<Conduction> cond(nw.transistors.size(), Conduction::Off);

  // BFS from one driver source. `value_driven` selects device strength:
  // NMOS passes 0 at full swing but degrades 1; PMOS the reverse. `mode`
  // 0 = strong-definite, 1 = any-definite, 2 = maybe.
  const auto run_reach = [&](std::uint16_t start, bool value_driven, int mode,
                             std::vector<bool>& out) {
    if (out[start]) return;  // another source of this class already swept
    std::vector<std::uint16_t> queue{start};
    out[start] = true;
    while (!queue.empty()) {
      const std::uint16_t node = queue.back();
      queue.pop_back();
      if (node != start && pinned[node]) continue;  // sources terminate paths
      for (std::uint32_t t : adjacency[node]) {
        const Conduction c = cond[t];
        if (c == Conduction::Off) continue;
        if (mode < 2 && c == Conduction::Maybe) continue;
        if (mode == 0) {
          const bool full_swing = value_driven ? nw.transistors[t].is_pmos
                                               : !nw.transistors[t].is_pmos;
          if (!full_swing) continue;
        }
        const std::uint16_t s = reps.find(nw.transistors[t].source_node);
        const std::uint16_t d = reps.find(nw.transistors[t].drain_node);
        const std::uint16_t other = (s == node) ? d : s;
        if (!out[other]) {
          out[other] = true;
          queue.push_back(other);
        }
      }
    }
  };

  Reach reach0(n), reach1(n);

  for (int iter = 0; iter < 8; ++iter) {
    // Transistor conduction from gate values.
    for (std::uint32_t t = 0; t < nw.transistors.size(); ++t) {
      const Transistor& tr = nw.transistors[t];
      if (defect && defect->kind == DefectKind::TransistorStuckOpen &&
          defect->a == t) {
        cond[t] = Conduction::Off;
        continue;
      }
      if (defect && defect->kind == DefectKind::TransistorStuckOn &&
          defect->a == t) {
        cond[t] = Conduction::On;
        continue;
      }
      SwitchValue g = value[reps.find(tr.gate_node)];
      if (defect && defect->kind == DefectKind::PinOpen &&
          tr.gate_node == nw.input_nodes[defect->a]) {
        g = SwitchValue::X;  // floating gate
      }
      switch (g) {
        case SwitchValue::Zero:
          cond[t] = tr.is_pmos ? Conduction::On : Conduction::Off;
          break;
        case SwitchValue::One:
          cond[t] = tr.is_pmos ? Conduction::Off : Conduction::On;
          break;
        default:
          cond[t] = Conduction::Maybe;
          break;
      }
    }

    // Reachability from every driver source, split by driven value.
    for (auto* r : {&reach0, &reach1}) {
      std::fill(r->strong.begin(), r->strong.end(), false);
      std::fill(r->any.begin(), r->any.end(), false);
      std::fill(r->maybe.begin(), r->maybe.end(), false);
    }
    for (std::uint16_t node = 0; node < n; ++node) {
      if (reps.find(node) != node || !pinned[node]) continue;
      const SwitchValue v = value[node];
      if (v == SwitchValue::Zero || v == SwitchValue::X) {
        Reach& r = reach0;
        run_reach(node, false, 0, r.strong);
        run_reach(node, false, 1, r.any);
        run_reach(node, false, 2, r.maybe);
      }
      if (v == SwitchValue::One || v == SwitchValue::X) {
        Reach& r = reach1;
        run_reach(node, true, 0, r.strong);
        run_reach(node, true, 1, r.any);
        run_reach(node, true, 2, r.maybe);
      }
    }

    bool changed = false;
    for (std::uint16_t r = 0; r < n; ++r) {
      if (reps.find(r) != r || pinned[r]) continue;
      const bool s0 = reach0.strong[r], a0 = reach0.any[r],
                 m0 = reach0.maybe[r];
      const bool s1 = reach1.strong[r], a1 = reach1.any[r],
                 m1 = reach1.maybe[r];
      SwitchValue v;
      if (s0 && !a1 && !m1) {
        v = SwitchValue::Zero;
      } else if (s1 && !a0 && !m0) {
        v = SwitchValue::One;
      } else if (a0 || a1 || m0 || m1) {
        // Fight, degraded-only drive, or uncertain topology: the node
        // voltage is not a dependable full-swing logic level.
        v = SwitchValue::X;
      } else if (!prev.empty()) {
        v = prev[r];  // isolated: retain charge
      } else {
        v = SwitchValue::Z;
      }
      if (value[r] != v) {
        value[r] = v;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Expand representative values to all nodes.
  std::vector<SwitchValue> out(n);
  for (std::uint16_t i = 0; i < n; ++i) out[i] = value[reps.find(i)];
  return out;
}

}  // namespace dfmres
