#pragma once

#include <cstdint>
#include <vector>

#include "src/library/cell.hpp"
#include "src/switchlevel/switch_sim.hpp"

namespace dfmres {

/// One detecting condition of a cell-internal defect, expressed at the
/// cell boundary (user-defined fault model / cell-aware style, paper
/// refs [9-11]). Fully specified input minterms; two-pattern entries
/// carry the initializing minterm of the previous cycle.
struct UdfmPattern {
  std::uint32_t inputs = 0;       ///< frame-1 cell input minterm
  std::uint32_t prev_inputs = 0;  ///< frame-0 minterm (two-pattern only)
  bool has_prev = false;
  std::uint8_t output = 0;        ///< observing cell output pin
  bool faulty_value = false;      ///< value the output takes when defective
};

/// A cell-internal DFM fault: a physical defect plus every boundary
/// pattern that detects it. An empty pattern list means the defect is
/// undetectable at the cell level (it is still counted in F).
struct CellInternalFault {
  CellDefect defect;
  std::vector<UdfmPattern> patterns;
};

/// Internal-fault universe of one library cell; extracted once and reused
/// for every instance (paper Section I: every instance of a cell
/// introduces the same internal faults).
struct CellUdfm {
  std::vector<CellInternalFault> faults;

  [[nodiscard]] std::size_t num_faults() const { return faults.size(); }
};

/// Enumerates the intra-cell defect sites anticipated by DFM guidelines
/// on the cell's transistor network: contact/via opens per device and
/// input pin, gate/channel shorts per device, output-rail shorts,
/// adjacent-internal-node bridges, and per-finger drive opens for
/// multi-finger (higher-drive) cells.
[[nodiscard]] std::vector<CellDefect> enumerate_cell_defects(
    const CellSpec& cell);

/// Runs switch-level simulation of every defect against every (pair of)
/// input pattern(s) and records the detecting UDFM entries. Sequential
/// and network-less cells yield an empty universe.
[[nodiscard]] CellUdfm extract_cell_udfm(const CellSpec& cell);

}  // namespace dfmres
