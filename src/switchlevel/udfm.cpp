#include "src/switchlevel/udfm.hpp"

#include <algorithm>
#include <bit>
#include <optional>

namespace dfmres {

namespace {

bool is_input_node(const TransistorNetwork& nw, std::uint16_t node) {
  return std::find(nw.input_nodes.begin(), nw.input_nodes.end(), node) !=
         nw.input_nodes.end();
}

/// Boolean view of a switch value, if defined.
std::optional<bool> as_bool(SwitchValue v) {
  switch (v) {
    case SwitchValue::Zero: return false;
    case SwitchValue::One: return true;
    default: return std::nullopt;
  }
}

}  // namespace

std::vector<CellDefect> enumerate_cell_defects(const CellSpec& cell) {
  std::vector<CellDefect> defects;
  const TransistorNetwork& nw = cell.network;
  if (nw.empty() || cell.sequential) return defects;

  // Contact opens and channel shorts, one pair per device.
  for (std::uint16_t t = 0; t < nw.transistors.size(); ++t) {
    defects.push_back({DefectKind::TransistorStuckOpen, t, 0});
    defects.push_back({DefectKind::TransistorStuckOn, t, 0});
  }
  // Poly contact open per input pin.
  for (std::uint16_t pin = 0; pin < nw.input_nodes.size(); ++pin) {
    defects.push_back({DefectKind::PinOpen, pin, 0});
  }
  // Output-to-rail shorts per output pin.
  for (std::uint16_t out : nw.output_nodes) {
    defects.push_back({DefectKind::NodeShortToVdd, out, 0});
    defects.push_back({DefectKind::NodeShortToGnd, out, 0});
  }
  // Bridges between index-adjacent internal/output nodes, a proxy for
  // layout adjacency inside the cell. Pairs already joined by a device
  // channel are covered by TransistorStuckOn and skipped.
  for (std::uint16_t a = 2; a + 1 < nw.num_nodes; ++a) {
    const std::uint16_t b = a + 1;
    if (is_input_node(nw, a) || is_input_node(nw, b)) continue;
    const bool channel_pair = std::any_of(
        nw.transistors.begin(), nw.transistors.end(), [&](const Transistor& tr) {
          return (tr.source_node == a && tr.drain_node == b) ||
                 (tr.source_node == b && tr.drain_node == a);
        });
    if (!channel_pair) defects.push_back({DefectKind::NodeBridge, a, b});
  }
  // Extra contact sites per additional drive finger.
  for (std::uint16_t f = 1; f < cell.drive_fingers; ++f) {
    defects.push_back({DefectKind::DriveFingerOpen, f, 0});
  }
  return defects;
}

CellUdfm extract_cell_udfm(const CellSpec& cell) {
  CellUdfm udfm;
  const TransistorNetwork& nw = cell.network;
  if (nw.empty() || cell.sequential) return udfm;

  const SwitchSim sim(nw);
  const auto num_patterns = std::uint32_t{1} << cell.num_inputs;

  // Good-machine outputs per pattern (from the network, which tests verify
  // against the cell truth tables separately).
  std::vector<std::vector<SwitchValue>> good(num_patterns);
  for (std::uint32_t p = 0; p < num_patterns; ++p) good[p] = sim.eval(p);

  for (const CellDefect& defect : enumerate_cell_defects(cell)) {
    CellInternalFault fault{defect, {}};

    if (defect.kind == DefectKind::DriveFingerOpen) {
      // One open finger of a multi-finger driver only weakens the drive:
      // the output still reaches the right rail, just slower. Static
      // scan patterns cannot detect it (it needs an at-speed test under
      // worst-case load), so the fault carries no UDFM patterns and is
      // undetectable wherever the cell is used -- until resynthesis
      // replaces the high-drive cell with a smaller one.
      udfm.faults.push_back(std::move(fault));
      continue;
    }

    // Static (single-pattern) detections. An X at the output under a
    // defined good value (a rail fight or floating-gate ambiguity) is
    // taken as a worst-case detection at the complement of the good
    // value, the standard cell-aware treatment of stuck-on and bridge
    // defects.
    std::vector<std::vector<bool>> static_detect(
        cell.num_outputs, std::vector<bool>(num_patterns, false));
    std::vector<std::vector<SwitchValue>> faulty(num_patterns);
    for (std::uint32_t p = 0; p < num_patterns; ++p) {
      faulty[p] = sim.eval(p, &defect);
      for (std::uint8_t out = 0; out < cell.num_outputs; ++out) {
        const std::uint16_t node = nw.output_nodes[out];
        const auto fv = as_bool(faulty[p][node]);
        const auto gv = as_bool(good[p][node]);
        if (!gv) continue;
        const bool x_detect = faulty[p][node] == SwitchValue::X;
        if ((fv && *fv != *gv) || x_detect) {
          fault.patterns.push_back({p, 0, false, out, !*gv});
          static_detect[out][p] = true;
        }
      }
    }

    // Two-pattern detections (charge retention), for patterns that are not
    // already statically detecting. The initializing pattern must resolve
    // the faulty machine (no Z) so the retained state is known.
    for (std::uint32_t p0 = 0; p0 < num_patterns; ++p0) {
      const bool initialized = std::none_of(
          faulty[p0].begin(), faulty[p0].end(),
          [](SwitchValue v) { return v == SwitchValue::Z; });
      if (!initialized) continue;
      for (std::uint32_t p1 = 0; p1 < num_patterns; ++p1) {
        if (p1 == p0) continue;
        // Robust two-pattern tests only: a single input transitions, the
        // way production cell-aware UDFMs qualify open defects. This is
        // what makes internal-fault detection conditions strict.
        if (std::popcount(p0 ^ p1) != 1) continue;
        const auto seq = sim.eval(p1, &defect, faulty[p0]);
        for (std::uint8_t out = 0; out < cell.num_outputs; ++out) {
          if (static_detect[out][p1]) continue;
          const std::uint16_t node = nw.output_nodes[out];
          const auto fv = as_bool(seq[node]);
          const auto gv = as_bool(good[p1][node]);
          if (!gv) continue;
          if (fv && *fv != *gv) {
            fault.patterns.push_back({p1, p0, true, out, *fv});
          }
        }
      }
    }
    udfm.faults.push_back(std::move(fault));
  }
  return udfm;
}

}  // namespace dfmres
