#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/library/transistor.hpp"

namespace dfmres {

/// Four-valued node state of a switch-level simulation.
enum class SwitchValue : std::uint8_t { Zero, One, X, Z };

/// Physical defect inside a standard cell, expressed on its transistor
/// network. These are the defect mechanisms DFM guidelines anticipate:
/// contact/via opens, gate/channel shorts, and metal bridges.
enum class DefectKind : std::uint8_t {
  TransistorStuckOpen,  ///< drain/source contact open: device never conducts
  TransistorStuckOn,    ///< gate-oxide / channel short: device always conducts
  PinOpen,              ///< input-pin contact open: gated devices float (X)
  NodeShortToVdd,       ///< node bridged to the supply rail
  NodeShortToGnd,       ///< node bridged to ground
  NodeBridge,           ///< two cell-internal nodes bridged
  DriveFingerOpen,      ///< one drive finger open: weak (slow) output
};

struct CellDefect {
  DefectKind kind;
  std::uint16_t a = 0;  ///< transistor index, pin index, or first node
  std::uint16_t b = 0;  ///< second node for NodeBridge

  friend bool operator==(const CellDefect&, const CellDefect&) = default;
};

/// Conservative switch-level simulator for static CMOS cell networks.
///
/// Semantics:
///  - A node definitely connected to exactly one rail takes that value.
///  - A node definitely connected to both rails (a fight) is X: the
///    voltage is ratio-dependent. UDFM extraction treats such an X as a
///    worst-case detection (faulty value = complement of good), matching
///    the usual cell-aware handling of stuck-on/bridge defects.
///  - A node whose rail connectivity depends on an X/floating gate is X.
///  - An isolated node retains its previous value when one is supplied
///    (charge retention, needed for two-pattern stuck-open detection),
///    otherwise it is Z.
class SwitchSim {
 public:
  explicit SwitchSim(const TransistorNetwork& network);

  /// Evaluates the network for a fully specified input pattern (bit k of
  /// `pattern` = input pin k). `defect` may be null (good machine).
  /// `prev` (optional) supplies per-node retained charge from a previous
  /// evaluation. Returns all node values; read outputs via
  /// network().output_nodes.
  [[nodiscard]] std::vector<SwitchValue> eval(
      std::uint32_t pattern, const CellDefect* defect = nullptr,
      std::span<const SwitchValue> prev = {}) const;

  [[nodiscard]] const TransistorNetwork& network() const { return network_; }

 private:
  const TransistorNetwork& network_;
};

}  // namespace dfmres
