#pragma once

#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace dfmres {

/// Per-cell-type instance counts plus aggregate size figures.
struct CellUsage {
  struct Entry {
    CellId cell;
    std::string name;
    std::size_t count = 0;
  };
  std::vector<Entry> entries;  ///< one per library cell with count > 0
  std::size_t num_gates = 0;
  std::size_t num_sequential = 0;
  std::size_t num_nets = 0;
  std::size_t num_primary_inputs = 0;
  std::size_t num_primary_outputs = 0;
  double area_um2 = 0.0;
};

[[nodiscard]] CellUsage cell_usage(const Netlist& nl);

/// Multi-line human-readable summary of a netlist.
[[nodiscard]] std::string describe(const Netlist& nl);

}  // namespace dfmres
