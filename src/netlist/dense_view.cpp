#include "src/netlist/dense_view.hpp"

namespace dfmres {

DenseView DenseView::build(const Netlist& nl, const CombView& view) {
  DenseView dv;
  dv.net_slots = nl.net_capacity();
  dv.gate_slots = nl.gate_capacity();

  dv.cell.assign(dv.gate_slots, nullptr);
  dv.is_sequential.assign(dv.gate_slots, 0);
  dv.driver.assign(dv.net_slots, kNoDriver);
  dv.topo_pos.assign(dv.gate_slots, 0);
  dv.observe_flag.assign(dv.net_slots, 0);
  dv.is_primary_output.assign(dv.net_slots, 0);

  // Pin rows (two-pass CSR: count, prefix-sum, fill).
  dv.fanin_offset.assign(dv.gate_slots + 1, 0);
  dv.output_offset.assign(dv.gate_slots + 1, 0);
  for (std::uint32_t g = 0; g < dv.gate_slots; ++g) {
    if (!nl.gate_alive(GateId{g})) continue;
    const auto& gate = nl.gate(GateId{g});
    dv.cell[g] = &nl.cell_of(GateId{g});
    dv.is_sequential[g] = dv.cell[g]->sequential ? 1 : 0;
    dv.fanin_offset[g + 1] = static_cast<std::uint32_t>(gate.fanin.size());
    dv.output_offset[g + 1] = static_cast<std::uint32_t>(gate.outputs.size());
  }
  for (std::uint32_t g = 0; g < dv.gate_slots; ++g) {
    dv.fanin_offset[g + 1] += dv.fanin_offset[g];
    dv.output_offset[g + 1] += dv.output_offset[g];
  }
  dv.fanin_net.resize(dv.fanin_offset.back());
  dv.output_net.resize(dv.output_offset.back());
  for (std::uint32_t g = 0; g < dv.gate_slots; ++g) {
    if (dv.cell[g] == nullptr) continue;
    const auto& gate = nl.gate(GateId{g});
    std::uint32_t fi = dv.fanin_offset[g];
    for (NetId f : gate.fanin) dv.fanin_net[fi++] = f.value();
    std::uint32_t oi = dv.output_offset[g];
    for (NetId o : gate.outputs) dv.output_net[oi++] = o.value();
  }

  // Combinational fanout per net: CSR over the sink lists, filtered to
  // live combinational gates (the only sinks event propagation visits).
  dv.fanout_offset.assign(dv.net_slots + 1, 0);
  dv.net_alive.assign(dv.net_slots, 0);
  for (std::uint32_t n = 0; n < dv.net_slots; ++n) {
    if (!nl.net_alive(NetId{n})) continue;
    dv.net_alive[n] = 1;
    const auto& net = nl.net(NetId{n});
    if (net.has_gate_driver()) dv.driver[n] = net.driver_gate.value();
    std::uint32_t count = 0;
    for (const PinRef& sink : net.sinks) {
      const std::uint32_t gs = sink.gate.value();
      if (dv.cell[gs] != nullptr && !dv.is_sequential[gs]) ++count;
    }
    dv.fanout_offset[n + 1] = count;
  }
  for (std::uint32_t n = 0; n < dv.net_slots; ++n) {
    dv.fanout_offset[n + 1] += dv.fanout_offset[n];
  }
  dv.fanout_gate.resize(dv.fanout_offset.back());
  for (std::uint32_t n = 0; n < dv.net_slots; ++n) {
    if (!nl.net_alive(NetId{n})) continue;
    std::uint32_t fi = dv.fanout_offset[n];
    for (const PinRef& sink : nl.net(NetId{n}).sinks) {
      const std::uint32_t gs = sink.gate.value();
      if (dv.cell[gs] != nullptr && !dv.is_sequential[gs]) {
        dv.fanout_gate[fi++] = gs;
      }
    }
  }

  dv.order.reserve(view.order.size());
  for (std::uint32_t i = 0; i < view.order.size(); ++i) {
    const std::uint32_t gs = view.order[i].value();
    dv.order.push_back(gs);
    dv.topo_pos[gs] = i;
  }
  dv.sources.reserve(view.sources.size());
  for (NetId s : view.sources) dv.sources.push_back(s.value());
  for (NetId obs : view.observe) dv.observe_flag[obs.value()] = 1;
  for (std::uint32_t n = 0; n < dv.net_slots; ++n) {
    if (nl.net_alive(NetId{n}) && nl.net(NetId{n}).is_primary_output) {
      dv.is_primary_output[n] = 1;
    }
  }
  return dv;
}

std::shared_ptr<const DenseView> DenseView::build_shared(const Netlist& nl,
                                                         const CombView& view) {
  return std::make_shared<const DenseView>(build(nl, view));
}

}  // namespace dfmres
