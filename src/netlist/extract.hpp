#pragma once

#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// A combinational region of a parent netlist lifted out as a standalone
/// circuit (paper Section III-B: C_sub, connected to the rest of C_all
/// through shared nets).
struct Subcircuit {
  Netlist circuit;  ///< standalone; PI k ~ boundary_inputs[k], PO k ~ boundary_outputs[k]
  std::vector<NetId> boundary_inputs;   ///< parent nets feeding the region
  std::vector<NetId> boundary_outputs;  ///< parent nets driven by the region and observed outside it
  std::vector<GateId> region;           ///< parent gates included
};

/// Extracts the subcircuit induced by `region` (combinational gates only;
/// dead or sequential gates in the span yield an invalid_argument status).
/// Boundary inputs are nets consumed by the region but driven outside it
/// (or primary inputs); boundary outputs are region-driven nets with sinks
/// outside the region or primary-output markings.
[[nodiscard]] Expected<Subcircuit> extract_subcircuit(
    const Netlist& parent, std::span<const GateId> region);

/// Splices `replacement` into `parent` in place of `sub.region`.
/// `replacement` must have exactly sub.boundary_inputs.size() primary
/// inputs and sub.boundary_outputs.size() primary outputs, positionally
/// matched (invalid_argument otherwise, with the parent left untouched),
/// and must use the same library as the parent. Wire-through and
/// shared-driver outputs are merged onto their source nets. Returns the
/// gates added to the parent.
[[nodiscard]] Expected<std::vector<GateId>> replace_region(
    Netlist& parent, const Subcircuit& sub, const Netlist& replacement);

/// Kills every net that has neither driver nor sinks nor PI/PO marking.
void sweep_dangling_nets(Netlist& nl);

}  // namespace dfmres
