#include "src/netlist/extract.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "src/util/status.hpp"

namespace dfmres {

Expected<Subcircuit> extract_subcircuit(const Netlist& parent,
                                        std::span<const GateId> region) {
  std::unordered_set<std::uint32_t> in_region;
  in_region.reserve(region.size());
  for (GateId g : region) {
    if (!parent.gate_alive(g)) {
      return make_status(StatusCode::kInvalidArgument,
                         "extract_subcircuit: dead gate %u in region of '%s'",
                         g.value(), parent.name().c_str());
    }
    if (parent.cell_of(g).sequential) {
      return make_status(
          StatusCode::kInvalidArgument,
          "extract_subcircuit: sequential gate %u (cell '%s') in region",
          g.value(), parent.cell_of(g).name.c_str());
    }
    in_region.insert(g.value());
  }

  Subcircuit sub{Netlist(parent.library_ptr(), parent.name() + "_sub"),
                 {}, {}, {region.begin(), region.end()}};

  auto driven_in_region = [&](NetId n) {
    const auto& net = parent.net(n);
    return net.has_gate_driver() && in_region.contains(net.driver_gate.value());
  };

  // Boundary inputs: region fanins driven outside, deduplicated in
  // first-seen order for determinism.
  std::unordered_map<std::uint32_t, NetId> net_map;  // parent net -> sub net
  for (GateId g : region) {
    for (NetId in : parent.gate(g).fanin) {
      if (driven_in_region(in) || net_map.contains(in.value())) continue;
      const NetId sub_net = sub.circuit.add_primary_input();
      net_map.emplace(in.value(), sub_net);
      sub.boundary_inputs.push_back(in);
    }
  }

  // Create sub nets for all region-driven nets.
  for (GateId g : region) {
    for (NetId out : parent.gate(g).outputs) {
      net_map.emplace(out.value(), sub.circuit.add_net());
    }
  }

  // Instantiate gates (any order; nets pre-created).
  for (GateId g : region) {
    const auto& gate = parent.gate(g);
    std::vector<NetId> fanins, outputs;
    for (NetId in : gate.fanin) fanins.push_back(net_map.at(in.value()));
    for (NetId out : gate.outputs) outputs.push_back(net_map.at(out.value()));
    sub.circuit.add_gate_driving(gate.cell, fanins, outputs);
  }

  // Boundary outputs: region-driven nets observed outside the region.
  for (GateId g : region) {
    for (NetId out : parent.gate(g).outputs) {
      const auto& net = parent.net(out);
      bool observed = net.is_primary_output;
      for (const PinRef& sink : net.sinks) {
        if (!in_region.contains(sink.gate.value())) {
          observed = true;
          break;
        }
        // A sink on a sequential gate can only be outside the region.
      }
      if (observed) {
        sub.circuit.mark_primary_output(net_map.at(out.value()));
        sub.boundary_outputs.push_back(out);
      }
    }
  }
  return sub;
}

Expected<std::vector<GateId>> replace_region(Netlist& parent,
                                             const Subcircuit& sub,
                                             const Netlist& replacement) {
  if (replacement.primary_inputs().size() != sub.boundary_inputs.size() ||
      replacement.primary_outputs().size() != sub.boundary_outputs.size()) {
    return make_status(
        StatusCode::kInvalidArgument,
        "replace_region: boundary mismatch (pi %zu vs %zu, po %zu vs %zu)",
        replacement.primary_inputs().size(), sub.boundary_inputs.size(),
        replacement.primary_outputs().size(), sub.boundary_outputs.size());
  }

  for (GateId g : sub.region) parent.remove_gate(g);
  sweep_dangling_nets(parent);

  // Map replacement nets onto parent nets.
  std::vector<NetId> net_map(replacement.net_capacity(), NetId::invalid());
  for (std::size_t i = 0; i < replacement.primary_inputs().size(); ++i) {
    net_map[replacement.primary_inputs()[i].value()] = sub.boundary_inputs[i];
  }
  // Pre-assign each boundary output net to the first replacement PO that
  // uses a fresh, gate-driven replacement net; the rest get buffers below.
  std::vector<bool> po_direct(replacement.primary_outputs().size(), false);
  std::unordered_set<std::uint32_t> claimed;
  for (std::size_t i = 0; i < replacement.primary_outputs().size(); ++i) {
    const NetId rnet = replacement.primary_outputs()[i];
    if (!replacement.net(rnet).has_gate_driver()) continue;  // wire-through
    if (!claimed.insert(rnet.value()).second) continue;      // shared driver
    net_map[rnet.value()] = sub.boundary_outputs[i];
    po_direct[i] = true;
  }
  // All other replacement nets become fresh parent nets.
  for (NetId rnet : replacement.live_nets()) {
    if (!net_map[rnet.value()].valid()) {
      net_map[rnet.value()] = parent.add_net();
    }
  }

  std::vector<GateId> added;
  for (GateId rg : replacement.live_gates()) {
    const auto& gate = replacement.gate(rg);
    std::vector<NetId> fanins, outputs;
    for (NetId in : gate.fanin) fanins.push_back(net_map[in.value()]);
    for (NetId out : gate.outputs) outputs.push_back(net_map[out.value()]);
    added.push_back(parent.add_gate_driving(gate.cell, fanins, outputs));
  }

  // Boundary outputs that could not take a driver directly (wire-through
  // POs and duplicate-driver POs) are merged onto their source nets; a
  // buffer here would re-introduce cells the caller may have banned.
  for (std::size_t i = 0; i < replacement.primary_outputs().size(); ++i) {
    if (po_direct[i]) continue;
    const NetId src = net_map[replacement.primary_outputs()[i].value()];
    const NetId dst = sub.boundary_outputs[i];
    if (src == dst || !parent.net_alive(dst)) continue;
    parent.merge_net_into(dst, src);
  }
  sweep_dangling_nets(parent);
  return added;
}

void sweep_dangling_nets(Netlist& nl) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t i = 0; i < nl.net_capacity(); ++i) {
      const NetId id{i};
      if (!nl.net_alive(id)) continue;
      const auto& net = nl.net(id);
      if (net.sinks.empty() && !net.has_gate_driver() &&
          !net.is_primary_input && !net.is_primary_output) {
        nl.remove_net(id);
        changed = true;
      }
    }
  }
}

}  // namespace dfmres
