#include "src/netlist/extract.hpp"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "src/util/status.hpp"

namespace dfmres {

Expected<Subcircuit> extract_subcircuit(const Netlist& parent,
                                        std::span<const GateId> region) {
  std::unordered_set<std::uint32_t> in_region;
  in_region.reserve(region.size());
  for (GateId g : region) {
    if (!parent.gate_alive(g)) {
      return make_status(StatusCode::kInvalidArgument,
                         "extract_subcircuit: dead gate %u in region of '%s'",
                         g.value(), parent.name().c_str());
    }
    if (parent.cell_of(g).sequential) {
      return make_status(
          StatusCode::kInvalidArgument,
          "extract_subcircuit: sequential gate %u (cell '%s') in region",
          g.value(), parent.cell_of(g).name.c_str());
    }
    in_region.insert(g.value());
  }

  Subcircuit sub{Netlist(parent.library_ptr(), parent.name() + "_sub"),
                 {}, {}, {region.begin(), region.end()}};

  auto driven_in_region = [&](NetId n) {
    const auto& net = parent.net(n);
    return net.has_gate_driver() && in_region.contains(net.driver_gate.value());
  };

  // Boundary inputs: region fanins driven outside, deduplicated in
  // first-seen order for determinism.
  std::unordered_map<std::uint32_t, NetId> net_map;  // parent net -> sub net
  for (GateId g : region) {
    for (NetId in : parent.gate(g).fanin) {
      if (driven_in_region(in) || net_map.contains(in.value())) continue;
      const NetId sub_net = sub.circuit.add_primary_input();
      net_map.emplace(in.value(), sub_net);
      sub.boundary_inputs.push_back(in);
    }
  }

  // Create sub nets for all region-driven nets.
  for (GateId g : region) {
    for (NetId out : parent.gate(g).outputs) {
      net_map.emplace(out.value(), sub.circuit.add_net());
    }
  }

  // Instantiate gates (any order; nets pre-created).
  for (GateId g : region) {
    const auto& gate = parent.gate(g);
    std::vector<NetId> fanins, outputs;
    for (NetId in : gate.fanin) fanins.push_back(net_map.at(in.value()));
    for (NetId out : gate.outputs) outputs.push_back(net_map.at(out.value()));
    sub.circuit.add_gate_driving(gate.cell, fanins, outputs);
  }

  // Boundary outputs: region-driven nets observed outside the region.
  for (GateId g : region) {
    for (NetId out : parent.gate(g).outputs) {
      const auto& net = parent.net(out);
      bool observed = net.is_primary_output;
      for (const PinRef& sink : net.sinks) {
        if (!in_region.contains(sink.gate.value())) {
          observed = true;
          break;
        }
        // A sink on a sequential gate can only be outside the region.
      }
      if (observed) {
        sub.circuit.mark_primary_output(net_map.at(out.value()));
        sub.boundary_outputs.push_back(out);
      }
    }
  }
  return sub;
}

Expected<std::vector<GateId>> replace_region(Netlist& parent,
                                             const Subcircuit& sub,
                                             const Netlist& replacement) {
  if (replacement.primary_inputs().size() != sub.boundary_inputs.size() ||
      replacement.primary_outputs().size() != sub.boundary_outputs.size()) {
    return make_status(
        StatusCode::kInvalidArgument,
        "replace_region: boundary mismatch (pi %zu vs %zu, po %zu vs %zu)",
        replacement.primary_inputs().size(), sub.boundary_inputs.size(),
        replacement.primary_outputs().size(), sub.boundary_outputs.size());
  }

  // Net identity is load-bearing downstream of this splice: probe
  // overlays, the warm fault-status cache, and cone ledgers all assume
  // a NetId means the same *signal* forever (see DESIGN.md). Re-mapping
  // a region rewrites its internals, but most intermediate signals
  // usually survive the rewrite — only expressed through different
  // gates. We therefore match replacement nets to removed nets by
  // *functional signature*: every boundary-input net gets a fixed
  // 2x64-bit random word, the removed region is simulated over those
  // words while it is peeled away, and each replacement gate's outputs
  // are simulated the same way as they are spliced in. A signature hit
  // (collision odds ~2^-128 per pair) means the new net computes the
  // old net's function of the same boundary signals, so it adopts the
  // old NetId and the spliced netlist differs from the original only
  // where the rewrite actually changed logic. Everything that keys on
  // identity then pays O(change), not O(region).
  struct Sig {
    std::uint64_t a = 0, b = 0;
    bool operator==(const Sig&) const = default;
  };
  const auto splitmix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  std::unordered_map<std::uint32_t, Sig> net_sig;  // parent net -> signature
  const auto sig_of = [&](NetId n) {
    const auto [it, inserted] = net_sig.try_emplace(n.value());
    // First sight of a net nothing in the region drives: a free variable.
    if (inserted) {
      it->second = {splitmix(n.value() * 2 + 1), splitmix(n.value() * 2 + 2)};
    }
    return it->second;
  };
  // Bitwise truth-table evaluation, one lane per signature bit.
  const auto eval_sig = [](const CellSpec& spec, int output,
                           std::span<const Sig> in) {
    Sig out;
    for (int lane = 0; lane < 64; ++lane) {
      std::uint32_t pa = 0, pb = 0;
      for (std::size_t i = 0; i < in.size(); ++i) {
        pa |= static_cast<std::uint32_t>((in[i].a >> lane) & 1u) << i;
        pb |= static_cast<std::uint32_t>((in[i].b >> lane) & 1u) << i;
      }
      out.a |= static_cast<std::uint64_t>(spec.eval(output, pa)) << lane;
      out.b |= static_cast<std::uint64_t>(spec.eval(output, pb)) << lane;
    }
    return out;
  };
  const auto sig_key = [&](const Sig& s) { return s.a ^ splitmix(s.b); };
  // Unclaimed removed nets by signature; adoption erases its pick.
  std::unordered_multimap<std::uint64_t, NetId> adoptable;

  // Remove drivers before their region-internal sinks so shared nets
  // still have sinks at removal time and stay alive for re-adoption
  // (remove_gate kills an output net with no sinks left). The region is
  // combinational, so Kahn's algorithm consumes it completely — and its
  // pop order is topological, which is exactly what the signature
  // simulation of the disappearing region needs.
  {
    const std::size_t count = sub.region.size();
    std::unordered_map<std::uint32_t, std::size_t> region_pos;
    for (std::size_t i = 0; i < count; ++i) {
      region_pos.emplace(sub.region[i].value(), i);
    }
    std::vector<std::vector<std::size_t>> out_edges(count);
    std::vector<std::size_t> indegree(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
      for (NetId out : parent.gate(sub.region[i]).outputs) {
        for (const PinRef& sink : parent.net(out).sinks) {
          const auto it = region_pos.find(sink.gate.value());
          if (it == region_pos.end()) continue;
          out_edges[i].push_back(it->second);
          ++indegree[it->second];
        }
      }
    }
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < count; ++i) {
      if (indegree[i] == 0) ready.push_back(i);
    }
    std::vector<Sig> in_sigs;
    std::size_t removed_count = 0;
    while (!ready.empty()) {
      const std::size_t i = ready.back();
      ready.pop_back();
      const auto& gate = parent.gate(sub.region[i]);
      const CellSpec& spec = parent.library().cell(gate.cell);
      in_sigs.clear();
      for (NetId in : gate.fanin) in_sigs.push_back(sig_of(in));
      for (std::size_t k = 0; k < gate.outputs.size(); ++k) {
        const Sig s = eval_sig(spec, static_cast<int>(k), in_sigs);
        net_sig[gate.outputs[k].value()] = s;
        adoptable.emplace(sig_key(s), gate.outputs[k]);
      }
      parent.remove_gate(sub.region[i]);
      ++removed_count;
      for (const std::size_t j : out_edges[i]) {
        if (--indegree[j] == 0) ready.push_back(j);
      }
    }
    assert(removed_count == sub.region.size());
    (void)removed_count;
  }
  // Dangling original nets are swept at the end — replacement gates
  // computing the same signals may re-adopt them first.

  // Map replacement nets onto parent nets.
  std::vector<NetId> net_map(replacement.net_capacity(), NetId::invalid());
  for (std::size_t i = 0; i < replacement.primary_inputs().size(); ++i) {
    net_map[replacement.primary_inputs()[i].value()] = sub.boundary_inputs[i];
  }
  // Pre-assign each boundary output net to the first replacement PO that
  // uses a fresh, gate-driven replacement net; the rest get buffers below.
  std::vector<bool> po_direct(replacement.primary_outputs().size(), false);
  std::unordered_set<std::uint32_t> claimed;
  for (std::size_t i = 0; i < replacement.primary_outputs().size(); ++i) {
    const NetId rnet = replacement.primary_outputs()[i];
    if (!replacement.net(rnet).has_gate_driver()) continue;  // wire-through
    if (!claimed.insert(rnet.value()).second) continue;      // shared driver
    net_map[rnet.value()] = sub.boundary_outputs[i];
    po_direct[i] = true;
  }
  // Instantiate in topological order so every fanin is mapped (and
  // carries a signature) before its sinks: adoption cascades from the
  // boundary inputs upward, and re-locks downstream of a local change
  // as soon as the rewritten logic re-converges onto an old signal.
  // Only nets computing genuinely new functions become fresh parent
  // nets.
  std::unordered_set<std::uint32_t> boundary_out;
  boundary_out.reserve(sub.boundary_outputs.size());
  for (NetId n : sub.boundary_outputs) boundary_out.insert(n.value());
  // Adopt an unclaimed removed net with this signature, if any survives
  // the structural guards: a boundary-output net is reserved for the PO
  // wiring (po_direct pre-assignment or the merge loop below), and the
  // net must still be alive and driverless to accept a new driver.
  const auto adopt = [&](const Sig& s) {
    auto [it, end] = adoptable.equal_range(sig_key(s));
    for (; it != end; ++it) {
      const NetId n = it->second;
      if (net_sig.at(n.value()) != s || boundary_out.contains(n.value()) ||
          !parent.net_alive(n) || parent.net(n).has_gate_driver()) {
        continue;
      }
      adoptable.erase(it);
      return n;
    }
    return NetId::invalid();
  };
  std::vector<GateId> inst_order = replacement.topological_order();
  for (GateId rg : replacement.live_gates()) {  // comb-only topo order
    if (replacement.cell_of(rg).sequential) inst_order.push_back(rg);
  }
  std::vector<GateId> added;
  std::vector<Sig> in_sigs;
  for (GateId rg : inst_order) {
    const auto& gate = replacement.gate(rg);
    const CellSpec& spec = replacement.library().cell(gate.cell);
    std::vector<NetId> fanins, outputs;
    in_sigs.clear();
    for (NetId in : gate.fanin) {
      if (!net_map[in.value()].valid()) net_map[in.value()] = parent.add_net();
      fanins.push_back(net_map[in.value()]);
      in_sigs.push_back(sig_of(net_map[in.value()]));
    }
    for (std::size_t k = 0; k < gate.outputs.size(); ++k) {
      NetId& mapped = net_map[gate.outputs[k].value()];
      if (spec.sequential) {
        // Sequential outputs are fresh sources, never adoption targets;
        // sig_of() will mint them free-variable signatures on demand.
        if (!mapped.valid()) mapped = parent.add_net();
        outputs.push_back(mapped);
        continue;
      }
      const Sig s = eval_sig(spec, static_cast<int>(k), in_sigs);
      if (!mapped.valid()) {
        const NetId old = adopt(s);
        mapped = old.valid() ? old : parent.add_net();
      }
      net_sig[mapped.value()] = s;
      outputs.push_back(mapped);
    }
    added.push_back(parent.add_gate_driving(gate.cell, fanins, outputs));
  }

  // Boundary outputs that could not take a driver directly (wire-through
  // POs and duplicate-driver POs) are merged onto their source nets; a
  // buffer here would re-introduce cells the caller may have banned.
  for (std::size_t i = 0; i < replacement.primary_outputs().size(); ++i) {
    if (po_direct[i]) continue;
    const NetId src = net_map[replacement.primary_outputs()[i].value()];
    const NetId dst = sub.boundary_outputs[i];
    if (src == dst || !parent.net_alive(dst)) continue;
    parent.merge_net_into(dst, src);
  }
  sweep_dangling_nets(parent);
  return added;
}

void sweep_dangling_nets(Netlist& nl) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t i = 0; i < nl.net_capacity(); ++i) {
      const NetId id{i};
      if (!nl.net_alive(id)) continue;
      const auto& net = nl.net(id);
      if (net.sinks.empty() && !net.has_gate_driver() &&
          !net.is_primary_input && !net.is_primary_output) {
        nl.remove_net(id);
        changed = true;
      }
    }
  }
}

}  // namespace dfmres
