#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "src/netlist/netlist.hpp"

namespace dfmres {

/// Writes the netlist as structural Verilog: one module, `input`/`output`
/// /`wire` declarations, one instance per gate with named pin connections
/// (pin names from the cell specs), and one `assign` per primary output.
/// The emitted subset is exactly what read_verilog() accepts, so designs
/// can be exported, inspected with standard tooling, and re-imported.
void write_verilog(const Netlist& nl, std::ostream& os);
[[nodiscard]] std::string to_verilog(const Netlist& nl);

/// Parses the structural subset emitted by write_verilog() against the
/// given cell library. Returns nullopt (with a log message) on syntax
/// errors, unknown cells, or dangling references.
[[nodiscard]] std::optional<Netlist> read_verilog(
    std::string_view text, std::shared_ptr<const Library> lib);

}  // namespace dfmres
