#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "src/netlist/netlist.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// Writes the netlist as structural Verilog: one module, `input`/`output`
/// /`wire` declarations, one instance per gate with named pin connections
/// (pin names from the cell specs), and one `assign` per primary output.
/// The emitted subset is exactly what read_verilog() accepts, so designs
/// can be exported, inspected with standard tooling, and re-imported.
void write_verilog(const Netlist& nl, std::ostream& os);
[[nodiscard]] std::string to_verilog(const Netlist& nl);

/// Parses the structural subset emitted by write_verilog() against the
/// given cell library. Returns an invalid_argument status with a
/// line-numbered message on syntax errors, unknown cells or pins, open
/// inputs, duplicate or dangling assigns, and netlists that fail
/// validation (undriven nets, combinational cycles).
[[nodiscard]] Expected<Netlist> read_verilog(
    std::string_view text, std::shared_ptr<const Library> lib);

}  // namespace dfmres
