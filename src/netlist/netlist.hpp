#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/library/library.hpp"
#include "src/util/ids.hpp"

namespace dfmres {

/// Reference to one input pin of a gate (a net sink).
struct PinRef {
  GateId gate;
  std::uint16_t pin = 0;

  friend bool operator==(const PinRef&, const PinRef&) = default;
};

/// Gate-level, cell-based netlist. Gates instantiate cells of a Library;
/// nets connect one driver (a primary input or a gate output pin) to any
/// number of gate input pins. Primary outputs are markings on nets.
///
/// Gates and nets are never renumbered by removal (ids stay stable across
/// resynthesis splices); use compact() to rebuild a dense netlist.
class Netlist {
 public:
  struct Gate {
    CellId cell;
    std::vector<NetId> fanin;    // by cell input pin order
    std::vector<NetId> outputs;  // by cell output pin order
    bool dead = false;
  };

  struct Net {
    GateId driver_gate;           // invalid if primary input or undriven
    std::uint16_t driver_pin = 0; // output pin index of driver_gate
    bool is_primary_input = false;
    bool is_primary_output = false;
    bool dead = false;
    std::vector<PinRef> sinks;

    [[nodiscard]] bool has_gate_driver() const { return driver_gate.valid(); }
  };

  Netlist(std::shared_ptr<const Library> lib, std::string name);

  // ---- construction ----
  NetId add_primary_input(std::string name = {});
  /// Creates an undriven net (driver attached later via add_gate_driving).
  NetId add_net();
  /// Appends to the positional primary-output list. The list may contain
  /// the same net more than once (e.g. when mapping hashes two outputs to
  /// one signal); positional identity is what subcircuit replacement
  /// relies on.
  void mark_primary_output(NetId net);

  /// Adds a gate and creates one fresh output net per cell output.
  GateId add_gate(CellId cell, std::span<const NetId> fanins);
  /// Adds a gate that drives pre-existing (undriven) nets.
  GateId add_gate_driving(CellId cell, std::span<const NetId> fanins,
                          std::span<const NetId> outputs);

  /// Detaches and kills a gate. Its output nets lose their driver but stay
  /// alive if they still have sinks or are primary outputs; otherwise they
  /// are killed too.
  void remove_gate(GateId gate);
  /// Kills a net that has no driver and no sinks.
  void remove_net(NetId net);

  /// Reconnects input pin `pin` of `gate` to `net`.
  void rewire_fanin(GateId gate, int pin, NetId net);

  /// Swaps a gate's cell for another cell with identical pin counts
  /// (drive resizing).
  void retype_gate(GateId gate, CellId cell);

  /// Moves every sink and primary-output marking of `victim` onto
  /// `target`, then kills `victim`. `victim` must be undriven and not a
  /// primary input.
  void merge_net_into(NetId victim, NetId target);

  // ---- access ----
  [[nodiscard]] const Library& library() const { return *lib_; }
  [[nodiscard]] const std::shared_ptr<const Library>& library_ptr() const {
    return lib_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const Gate& gate(GateId id) const {
    return gates_[id.value()];
  }
  [[nodiscard]] const Net& net(NetId id) const { return nets_[id.value()]; }
  [[nodiscard]] const CellSpec& cell_of(GateId id) const {
    return lib_->cell(gate(id).cell);
  }
  [[nodiscard]] bool gate_alive(GateId id) const {
    return id.value() < gates_.size() && !gates_[id.value()].dead;
  }
  [[nodiscard]] bool net_alive(NetId id) const {
    return id.value() < nets_.size() && !nets_[id.value()].dead;
  }

  /// Number of slots (including dead ones); iterate with *_alive checks or
  /// use live_gates()/live_nets().
  [[nodiscard]] std::size_t gate_capacity() const { return gates_.size(); }
  [[nodiscard]] std::size_t net_capacity() const { return nets_.size(); }
  [[nodiscard]] std::size_t num_live_gates() const { return live_gates_; }
  [[nodiscard]] std::size_t num_live_nets() const { return live_nets_; }

  [[nodiscard]] std::vector<GateId> live_gates() const;
  [[nodiscard]] std::vector<NetId> live_nets() const;

  [[nodiscard]] const std::vector<NetId>& primary_inputs() const {
    return primary_inputs_;
  }
  [[nodiscard]] const std::vector<NetId>& primary_outputs() const {
    return primary_outputs_;
  }
  [[nodiscard]] const std::string& input_name(std::size_t i) const {
    return input_names_[i];
  }

  /// Sum of cell areas over live gates.
  [[nodiscard]] double total_area() const;

  /// Live gates in topological order, sequential cells excluded (their
  /// outputs act as sources). Aborts on a combinational cycle.
  [[nodiscard]] std::vector<GateId> topological_order() const;

  /// Structural sanity check; returns a human-readable list of problems
  /// (empty = valid).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Rebuilds a dense copy (no dead slots). `net_map`/`gate_map`, when
  /// non-null, receive old-id -> new-id tables (invalid for dead slots).
  [[nodiscard]] Netlist compact(std::vector<NetId>* net_map = nullptr,
                                std::vector<GateId>* gate_map = nullptr) const;

 private:
  void detach_sink(NetId net, PinRef pin);

  std::shared_ptr<const Library> lib_;
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<Net> nets_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
  std::vector<std::string> input_names_;
  std::size_t live_gates_ = 0;
  std::size_t live_nets_ = 0;
};

/// Combinational view of a (possibly sequential, full-scan) netlist:
/// DFF outputs become pseudo primary inputs and DFF inputs pseudo primary
/// outputs, the standard full-scan test model.
struct CombView {
  std::vector<NetId> sources;       ///< PIs + DFF Q nets
  std::vector<NetId> observe;       ///< PO nets + DFF D nets
  std::vector<GateId> order;        ///< combinational gates, topological
  std::size_t net_slots = 0;        ///< == netlist.net_capacity() at build

  [[nodiscard]] static CombView build(const Netlist& nl);
};

}  // namespace dfmres
