#include "src/netlist/stats.hpp"

#include "src/util/fmt.hpp"

namespace dfmres {

CellUsage cell_usage(const Netlist& nl) {
  CellUsage usage;
  std::vector<std::size_t> counts(nl.library().num_cells(), 0);
  for (GateId g : nl.live_gates()) {
    ++counts[nl.gate(g).cell.value()];
    ++usage.num_gates;
    if (nl.cell_of(g).sequential) ++usage.num_sequential;
  }
  for (std::uint32_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const CellId id{i};
    usage.entries.push_back({id, nl.library().cell(id).name, counts[i]});
  }
  usage.num_nets = nl.num_live_nets();
  usage.num_primary_inputs = nl.primary_inputs().size();
  usage.num_primary_outputs = nl.primary_outputs().size();
  usage.area_um2 = nl.total_area();
  return usage;
}

std::string describe(const Netlist& nl) {
  const CellUsage usage = cell_usage(nl);
  std::string out = strfmt(
      "netlist '%s': %zu gates (%zu sequential), %zu nets, %zu PIs, %zu POs, "
      "area %.1f um^2\n",
      nl.name().c_str(), usage.num_gates, usage.num_sequential, usage.num_nets,
      usage.num_primary_inputs, usage.num_primary_outputs, usage.area_um2);
  for (const auto& e : usage.entries) {
    out += strfmt("  %-10s x%zu\n", e.name.c_str(), e.count);
  }
  return out;
}

}  // namespace dfmres
