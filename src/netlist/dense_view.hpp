#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace dfmres {

/// Structure-of-arrays snapshot of the hot netlist data the fault
/// simulator and the event-driven propagation walk touch: gate pin
/// connectivity and combinational fanout as CSR adjacency, per-gate cell
/// specs, topological positions, and per-net observability flags — all
/// indexed by the netlist's stable dense slot ids (gates and nets are
/// never renumbered by removal, so a slot means the same object in every
/// view built over descendants of one netlist).
///
/// A DenseView is immutable and self-contained after build(): it holds
/// no pointers into the Netlist it was built from (CellSpec pointers
/// target the shared Library, which outlives every view), so it can be
/// shared across simulator instances and outlive netlist copies. This is
/// what lets a committed baseline's good-value frames be reused by
/// speculative probes: the probe diffs its own view against the
/// baseline's view slot by slot (see build_cow_plan in atpg/fault_sim).
struct DenseView {
  static constexpr std::uint32_t kNoDriver = 0xFFFFFFFFu;

  std::size_t net_slots = 0;   ///< netlist.net_capacity() at build
  std::size_t gate_slots = 0;  ///< netlist.gate_capacity() at build

  // CSR: combinational sink gates per net slot (sequential sinks are
  // excluded — full-scan frames are independent, so propagation stops
  // at flop boundaries, exactly as the event walk wants it).
  std::vector<std::uint32_t> fanout_offset;  ///< net_slots + 1
  std::vector<std::uint32_t> fanout_gate;

  // CSR: pin rows over every gate slot (dead slots have empty rows).
  // Rows cover sequential gates too so a structural diff between two
  // views sees every kind of edit.
  std::vector<std::uint32_t> fanin_offset;   ///< gate_slots + 1
  std::vector<std::uint32_t> fanin_net;
  std::vector<std::uint32_t> output_offset;  ///< gate_slots + 1
  std::vector<std::uint32_t> output_net;

  std::vector<const CellSpec*> cell;        ///< per gate slot; null = dead
  std::vector<std::uint8_t> is_sequential;  ///< per gate slot
  std::vector<std::uint32_t> driver;        ///< per net slot; kNoDriver = none

  std::vector<std::uint32_t> order;     ///< comb gate slots, topological
  std::vector<std::uint32_t> topo_pos;  ///< per gate slot (comb gates only)

  std::vector<std::uint8_t> net_alive;         ///< per net slot

  std::vector<std::uint32_t> sources;          ///< net slots (PIs + DFF Q)
  std::vector<std::uint8_t> observe_flag;      ///< per net slot
  std::vector<std::uint8_t> is_primary_output; ///< per net slot

  [[nodiscard]] static DenseView build(const Netlist& nl,
                                       const CombView& view);
  /// build() wrapped in a shared_ptr — the form the simulator arena and
  /// the probe-baseline machinery share.
  [[nodiscard]] static std::shared_ptr<const DenseView> build_shared(
      const Netlist& nl, const CombView& view);
};

}  // namespace dfmres
