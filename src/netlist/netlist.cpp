#include "src/netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include "src/util/fmt.hpp"
#include "src/util/status.hpp"

#include "src/util/logging.hpp"

namespace dfmres {

Netlist::Netlist(std::shared_ptr<const Library> lib, std::string name)
    : lib_(std::move(lib)), name_(std::move(name)) {
  assert(lib_ != nullptr);
}

NetId Netlist::add_primary_input(std::string name) {
  const NetId id{static_cast<std::uint32_t>(nets_.size())};
  Net net;
  net.is_primary_input = true;
  nets_.push_back(std::move(net));
  ++live_nets_;
  primary_inputs_.push_back(id);
  input_names_.push_back(name.empty() ? strfmt("pi%u", id.value())
                                      : std::move(name));
  return id;
}

NetId Netlist::add_net() {
  const NetId id{static_cast<std::uint32_t>(nets_.size())};
  nets_.emplace_back();
  ++live_nets_;
  return id;
}

void Netlist::mark_primary_output(NetId net) {
  assert(net_alive(net));
  nets_[net.value()].is_primary_output = true;
  primary_outputs_.push_back(net);
}

GateId Netlist::add_gate(CellId cell, std::span<const NetId> fanins) {
  const CellSpec& spec = lib_->cell(cell);
  std::vector<NetId> outputs;
  outputs.reserve(spec.num_outputs);
  for (int k = 0; k < spec.num_outputs; ++k) outputs.push_back(add_net());
  return add_gate_driving(cell, fanins, outputs);
}

GateId Netlist::add_gate_driving(CellId cell, std::span<const NetId> fanins,
                                 std::span<const NetId> outputs) {
  [[maybe_unused]] const CellSpec& spec = lib_->cell(cell);
  assert(fanins.size() == spec.num_inputs);
  assert(outputs.size() == spec.num_outputs);
  const GateId id{static_cast<std::uint32_t>(gates_.size())};
  Gate gate;
  gate.cell = cell;
  gate.fanin.assign(fanins.begin(), fanins.end());
  gate.outputs.assign(outputs.begin(), outputs.end());
  for (std::uint16_t pin = 0; pin < fanins.size(); ++pin) {
    assert(net_alive(fanins[pin]));
    nets_[fanins[pin].value()].sinks.push_back({id, pin});
  }
  for (std::uint16_t k = 0; k < outputs.size(); ++k) {
    Net& out = nets_[outputs[k].value()];
    assert(!out.dead && !out.has_gate_driver() && !out.is_primary_input);
    out.driver_gate = id;
    out.driver_pin = k;
  }
  gates_.push_back(std::move(gate));
  ++live_gates_;
  return id;
}

void Netlist::detach_sink(NetId net, PinRef pin) {
  auto& sinks = nets_[net.value()].sinks;
  auto it = std::find(sinks.begin(), sinks.end(), pin);
  assert(it != sinks.end());
  *it = sinks.back();
  sinks.pop_back();
}

void Netlist::remove_gate(GateId id) {
  assert(gate_alive(id));
  Gate& gate = gates_[id.value()];
  for (std::uint16_t pin = 0; pin < gate.fanin.size(); ++pin) {
    detach_sink(gate.fanin[pin], {id, pin});
  }
  for (NetId out : gate.outputs) {
    Net& net = nets_[out.value()];
    net.driver_gate = GateId::invalid();
    net.driver_pin = 0;
    if (net.sinks.empty() && !net.is_primary_output) {
      net.dead = true;
      --live_nets_;
    }
  }
  gate.dead = true;
  gate.fanin.clear();
  gate.outputs.clear();
  --live_gates_;
}

void Netlist::remove_net(NetId id) {
  assert(net_alive(id));
  Net& net = nets_[id.value()];
  assert(net.sinks.empty() && !net.has_gate_driver() &&
         !net.is_primary_input && !net.is_primary_output);
  net.dead = true;
  --live_nets_;
}

void Netlist::rewire_fanin(GateId gate_id, int pin, NetId net) {
  assert(gate_alive(gate_id) && net_alive(net));
  Gate& gate = gates_[gate_id.value()];
  const auto upin = static_cast<std::uint16_t>(pin);
  detach_sink(gate.fanin[upin], {gate_id, upin});
  gate.fanin[upin] = net;
  nets_[net.value()].sinks.push_back({gate_id, upin});
}

void Netlist::retype_gate(GateId gate_id, CellId cell) {
  assert(gate_alive(gate_id));
  Gate& gate = gates_[gate_id.value()];
  [[maybe_unused]] const CellSpec& spec = lib_->cell(cell);
  assert(gate.fanin.size() == spec.num_inputs &&
         gate.outputs.size() == spec.num_outputs);
  gate.cell = cell;
}

void Netlist::merge_net_into(NetId victim, NetId target) {
  assert(net_alive(victim) && net_alive(target) && victim != target);
  Net& v = nets_[victim.value()];
  assert(!v.has_gate_driver() && !v.is_primary_input);
  // Rewire sinks (copy: rewire_fanin mutates the sink list).
  const std::vector<PinRef> sinks = v.sinks;
  for (const PinRef& sink : sinks) {
    rewire_fanin(sink.gate, sink.pin, target);
  }
  if (v.is_primary_output) {
    for (NetId& po : primary_outputs_) {
      if (po == victim) po = target;
    }
    nets_[target.value()].is_primary_output = true;
    v.is_primary_output = false;
  }
  v.dead = true;
  --live_nets_;
}

std::vector<GateId> Netlist::live_gates() const {
  std::vector<GateId> out;
  out.reserve(live_gates_);
  for (std::uint32_t i = 0; i < gates_.size(); ++i) {
    if (!gates_[i].dead) out.emplace_back(i);
  }
  return out;
}

std::vector<NetId> Netlist::live_nets() const {
  std::vector<NetId> out;
  out.reserve(live_nets_);
  for (std::uint32_t i = 0; i < nets_.size(); ++i) {
    if (!nets_[i].dead) out.emplace_back(i);
  }
  return out;
}

double Netlist::total_area() const {
  double area = 0.0;
  for (const Gate& g : gates_) {
    if (!g.dead) area += lib_->cell(g.cell).area_um2;
  }
  return area;
}

std::vector<GateId> Netlist::topological_order() const {
  // Kahn's algorithm over combinational gates; sequential gate outputs and
  // primary inputs are sources.
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  std::vector<GateId> ready;
  std::size_t num_comb = 0;
  for (std::uint32_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.dead || lib_->cell(g.cell).sequential) continue;
    ++num_comb;
    std::uint32_t unresolved = 0;
    for (NetId in : g.fanin) {
      const Net& net = nets_[in.value()];
      if (net.has_gate_driver() &&
          !lib_->cell(gates_[net.driver_gate.value()].cell).sequential) {
        ++unresolved;
      }
    }
    pending[i] = unresolved;
    if (unresolved == 0) ready.emplace_back(i);
  }

  std::vector<GateId> order;
  order.reserve(num_comb);
  while (!ready.empty()) {
    const GateId g = ready.back();
    ready.pop_back();
    order.push_back(g);
    for (NetId out : gates_[g.value()].outputs) {
      for (const PinRef& sink : nets_[out.value()].sinks) {
        const Gate& sg = gates_[sink.gate.value()];
        if (sg.dead || lib_->cell(sg.cell).sequential) continue;
        if (--pending[sink.gate.value()] == 0) ready.push_back(sink.gate);
      }
    }
  }
  if (order.size() != num_comb) {
    // Unreachable for validated netlists: validate() reports cycles, and
    // every construction path (parser, mapper, builder) validates or
    // builds acyclically before this is called.
    fatal_invariant(
        "netlist '%s': combinational cycle detected (%zu of %zu ordered)",
        name_.c_str(), order.size(), num_comb);
  }
  return order;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  for (std::uint32_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.dead) continue;
    const CellSpec& spec = lib_->cell(g.cell);
    if (g.fanin.size() != spec.num_inputs) {
      problems.push_back(strfmt("gate %u (%s): %zu fanins, expected %d",
                                  i, spec.name.c_str(), g.fanin.size(),
                                  int(spec.num_inputs)));
    }
    for (std::uint16_t pin = 0; pin < g.fanin.size(); ++pin) {
      const NetId in = g.fanin[pin];
      if (!net_alive(in)) {
        problems.push_back(strfmt("gate %u pin %u: dead fanin net %u", i,
                                  pin, in.value()));
        continue;
      }
      const auto& sinks = nets_[in.value()].sinks;
      if (std::find(sinks.begin(), sinks.end(), PinRef{GateId{i}, pin}) ==
          sinks.end()) {
        problems.push_back(
            strfmt("gate %u pin %u: missing back-reference on net %u", i,
                   pin, in.value()));
      }
    }
    for (std::uint16_t k = 0; k < g.outputs.size(); ++k) {
      const NetId out = g.outputs[k];
      if (!net_alive(out)) {
        problems.push_back(
            strfmt("gate %u output %u: dead net %u", i, k, out.value()));
        continue;
      }
      const Net& net = nets_[out.value()];
      if (net.driver_gate != GateId{i} || net.driver_pin != k) {
        problems.push_back(strfmt(
            "gate %u output %u: net %u driver mismatch", i, k, out.value()));
      }
    }
  }
  for (std::uint32_t i = 0; i < nets_.size(); ++i) {
    const Net& net = nets_[i];
    if (net.dead) continue;
    if (!net.is_primary_input && !net.has_gate_driver()) {
      problems.push_back(strfmt("net %u: undriven", i));
    }
    for (const PinRef& sink : net.sinks) {
      if (!gate_alive(sink.gate)) {
        problems.push_back(strfmt("net %u: dead sink gate %u", i,
                                  sink.gate.value()));
      } else if (gates_[sink.gate.value()].fanin[sink.pin] != NetId{i}) {
        problems.push_back(
            strfmt("net %u: sink (%u, %u) does not point back", i,
                   sink.gate.value(), sink.pin));
      }
    }
  }
  // Combinational cycles (only meaningful once the structure above is
  // consistent): run the same Kahn peeling as topological_order() and
  // report how many gates never became ready. This is what makes cyclic
  // structural Verilog a parse error instead of a downstream abort.
  if (problems.empty()) {
    std::vector<std::uint32_t> pending(gates_.size(), 0);
    std::vector<std::uint32_t> ready;
    std::size_t num_comb = 0;
    for (std::uint32_t i = 0; i < gates_.size(); ++i) {
      const Gate& g = gates_[i];
      if (g.dead || lib_->cell(g.cell).sequential) continue;
      ++num_comb;
      for (NetId in : g.fanin) {
        const Net& net = nets_[in.value()];
        if (net.has_gate_driver() &&
            !lib_->cell(gates_[net.driver_gate.value()].cell).sequential) {
          ++pending[i];
        }
      }
      if (pending[i] == 0) ready.push_back(i);
    }
    std::size_t ordered = 0;
    while (!ready.empty()) {
      const std::uint32_t g = ready.back();
      ready.pop_back();
      ++ordered;
      for (NetId out : gates_[g].outputs) {
        for (const PinRef& sink : nets_[out.value()].sinks) {
          const Gate& sg = gates_[sink.gate.value()];
          if (sg.dead || lib_->cell(sg.cell).sequential) continue;
          if (--pending[sink.gate.value()] == 0) {
            ready.push_back(sink.gate.value());
          }
        }
      }
    }
    if (ordered != num_comb) {
      problems.push_back(strfmt("combinational cycle through %zu gate(s)",
                                num_comb - ordered));
    }
  }
  return problems;
}

Netlist Netlist::compact(std::vector<NetId>* net_map_out,
                         std::vector<GateId>* gate_map_out) const {
  Netlist out(lib_, name_);
  std::vector<NetId> net_map(nets_.size(), NetId::invalid());
  std::vector<GateId> gate_map(gates_.size(), GateId::invalid());

  for (std::size_t i = 0; i < primary_inputs_.size(); ++i) {
    const NetId old = primary_inputs_[i];
    net_map[old.value()] = out.add_primary_input(input_names_[i]);
  }
  // Create all remaining live nets first so gates can attach in any order.
  for (std::uint32_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i].dead || nets_[i].is_primary_input) continue;
    net_map[i] = out.add_net();
  }
  // Add gates in an order where sequential cells are fine anywhere; reuse
  // slot order for determinism.
  for (std::uint32_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.dead) continue;
    std::vector<NetId> fanins, outputs;
    fanins.reserve(g.fanin.size());
    outputs.reserve(g.outputs.size());
    for (NetId in : g.fanin) fanins.push_back(net_map[in.value()]);
    for (NetId o : g.outputs) outputs.push_back(net_map[o.value()]);
    gate_map[i] = out.add_gate_driving(g.cell, fanins, outputs);
  }
  for (NetId po : primary_outputs_) {
    out.mark_primary_output(net_map[po.value()]);
  }
  if (net_map_out) *net_map_out = std::move(net_map);
  if (gate_map_out) *gate_map_out = std::move(gate_map);
  return out;
}

CombView CombView::build(const Netlist& nl) {
  CombView view;
  view.net_slots = nl.net_capacity();
  view.sources = nl.primary_inputs();
  view.observe = nl.primary_outputs();
  view.order = nl.topological_order();
  for (GateId g : nl.live_gates()) {
    if (!nl.cell_of(g).sequential) continue;
    for (NetId q : nl.gate(g).outputs) view.sources.push_back(q);
    for (NetId d : nl.gate(g).fanin) view.observe.push_back(d);
  }
  return view;
}

}  // namespace dfmres
