// Wall-clock scaling of the parallel fault-simulation sweeps in
// `run_atpg` (thread pool, PR "parallelize fault simulation"). Runs the
// implementation flow once on the largest seed benchmark block to obtain
// its DFM fault universe, then re-classifies that fixed universe at
// several thread counts, verifying that every run produces bit-identical
// fault statuses and recording per-run wall clock plus engine counters
// in `BENCH_parallel_atpg.json`.
//
// Overrides: first argv = circuit name; DFMRES_BENCH_THREADLIST="1,2,4"
// picks the thread counts; DFMRES_BENCH_REPEATS=N takes best-of-N.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/sim/simd_dispatch.hpp"

using namespace dfmres;
using namespace dfmres::bench;

namespace {

std::vector<int> thread_list() {
  std::vector<int> out;
  if (const char* env = std::getenv("DFMRES_BENCH_THREADLIST")) {
    std::string s(env);
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t comma = s.find(',', pos);
      const std::size_t end = comma == std::string::npos ? s.size() : comma;
      if (end > pos) out.push_back(std::atoi(s.substr(pos, end - pos).c_str()));
      pos = end + 1;
    }
  }
  if (out.empty()) out = {1, 2, 4};
  return out;
}

/// Largest seed benchmark by generic gate count (cheap to compute: the
/// generators are deterministic and build in milliseconds).
std::string largest_benchmark() {
  std::string best;
  std::size_t best_gates = 0;
  for (const auto name : benchmark_names()) {
    const Netlist nl = build_benchmark(name).value();
    if (nl.num_live_gates() > best_gates) {
      best_gates = nl.num_live_gates();
      best = std::string(name);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchObservability obs("parallel_atpg");
  const std::string circuit = argc > 1 ? argv[1] : largest_benchmark();
  const int repeats = [] {
    const char* env = std::getenv("DFMRES_BENCH_REPEATS");
    return env ? std::max(1, std::atoi(env)) : 2;
  }();

  std::printf("==== parallel ATPG scaling: %s ====\n", circuit.c_str());
  DesignFlow flow(osu018_library(), bench_flow_options());
  const FlowState state = flow.run_initial(build_benchmark(circuit).value()).value();
  std::printf("faults=%zu gates=%zu\n", state.num_faults(),
              state.netlist.num_live_gates());

  AtpgOptions base = bench_flow_options().atpg;
  base.generate_tests = true;

  struct Run {
    int threads = 1;
    double seconds = 0.0;
    AtpgCounters counters;
  };
  std::vector<Run> runs;
  std::vector<FaultStatus> reference;
  bool identical = true;

  for (const int threads : thread_list()) {
    AtpgOptions options = base;
    options.num_threads = threads;
    Run run;
    run.threads = threads;
    run.seconds = std::numeric_limits<double>::max();
    for (int rep = 0; rep < repeats; ++rep) {
      using Clock = std::chrono::steady_clock;
      const auto t0 = Clock::now();
      const AtpgResult result =
          run_atpg(state.netlist, state.universe, flow.udfm(), options);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (seconds < run.seconds) {
        run.seconds = seconds;
        run.counters = result.counters;
      }
      if (reference.empty()) {
        reference = result.status;
      } else if (result.status != reference) {
        identical = false;
      }
    }
    obs.absorb(run.counters);
    runs.push_back(run);
    std::printf("threads=%-2d best-of-%d %.3fs  %s\n", threads, repeats,
                run.seconds, run.counters.summary().c_str());
  }

  // Single-thread kernel comparison: scalar (historical 64-lane) versus
  // the configured (auto-resolved wide SimWord) kernel. The two modes
  // alternate within the same loop so process-lifetime drift on shared
  // single-core hosts biases neither side; each takes its best rep.
  const char* sim_kernel = simd_mode_name(resolve_simd_mode(global_simd_mode()));
  double scalar_seconds = std::numeric_limits<double>::max();
  double wide_seconds = std::numeric_limits<double>::max();
  {
    const SimdMode saved = global_simd_mode();
    AtpgOptions options = base;
    options.num_threads = 1;
    for (int rep = 0; rep < 2 * repeats; ++rep) {
      const bool scalar = rep % 2 == 0;
      set_global_simd_mode(scalar ? SimdMode::kScalar : saved);
      using Clock = std::chrono::steady_clock;
      const auto t0 = Clock::now();
      const AtpgResult result =
          run_atpg(state.netlist, state.universe, flow.udfm(), options);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      (scalar ? scalar_seconds : wide_seconds) =
          std::min(scalar ? scalar_seconds : wide_seconds, seconds);
      std::printf(
          "  kernel-compare rep %d: %-9s %.3fs  phases %.3f/%.3f/%.3f/%.3fs\n",
          rep, scalar ? "scalar" : sim_kernel, seconds,
          result.counters.phase0_seconds, result.counters.phase1_seconds,
          result.counters.phase2_seconds, result.counters.phase3_seconds);
      if (result.status != reference) identical = false;
    }
    set_global_simd_mode(saved);
  }

  const auto seconds_at = [&](int threads) {
    for (const Run& r : runs) {
      if (r.threads == threads) return r.seconds;
    }
    return 0.0;
  };
  const double base_s = seconds_at(1);
  const double par_s = seconds_at(4) > 0 ? seconds_at(4) : runs.back().seconds;
  const double speedup = par_s > 0 ? base_s / par_s : 0.0;
  const double simd_speedup =
      wide_seconds > 0 ? scalar_seconds / wide_seconds : 0.0;
  std::printf("statuses bit-identical across thread counts and kernels: %s\n",
              identical ? "yes" : "NO (BUG)");
  std::printf("speedup (1 -> %d threads): %.2fx\n", runs.back().threads,
              speedup);
  std::printf("speedup (scalar -> %s kernel, 1 thread): %.2fx (%.3fs -> %.3fs)\n",
              sim_kernel, simd_speedup, scalar_seconds, wide_seconds);

  std::ofstream json("BENCH_parallel_atpg.json");
  json << "{\n  \"bench\": \"parallel_atpg\",\n";
  json << "  \"circuit\": \"" << circuit << "\",\n";
  json << "  \"faults\": " << state.num_faults() << ",\n";
  json << "  \"identical_statuses\": " << (identical ? "true" : "false")
       << ",\n";
  json << "  \"speedup\": " << speedup << ",\n";
  json << "  \"sim_kernel\": \"" << sim_kernel << "\",\n";
  json << "  \"scalar_kernel_seconds\": " << scalar_seconds << ",\n";
  json << "  \"wide_kernel_seconds\": " << wide_seconds << ",\n";
  json << "  \"simd_speedup\": " << simd_speedup << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    json << "    {\"threads\": " << runs[i].threads
         << ", \"seconds\": " << runs[i].seconds
         << ", \"counters\": " << runs[i].counters.json() << "}"
         << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_parallel_atpg.json\n");
  return identical ? 0 : 1;
}
