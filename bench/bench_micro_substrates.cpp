// Microbenchmarks of the flow substrates (google-benchmark): switch-level
// cell evaluation, UDFM extraction, 64-lane logic simulation, fault
// simulation, PODEM, technology mapping, placement, and routing. These
// bound the cost of one resynthesis candidate evaluation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

#include "src/atpg/engine.hpp"
#include "src/circuits/benchmarks.hpp"
#include "src/core/flow.hpp"
#include "src/dfm/checker.hpp"
#include "src/library/osu018.hpp"
#include "src/place/placement.hpp"
#include "src/route/router.hpp"
#include "src/sim/parallel_sim.hpp"
#include "src/sta/sta.hpp"
#include "src/switchlevel/switch_sim.hpp"
#include "src/switchlevel/udfm.hpp"
#include "src/synth/mapper.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace dfmres;

const Netlist& mapped_tv80() {
  static const Netlist nl = [] {
    const Netlist rtl = build_benchmark("tv80").value();
    MapOptions mo;
    const auto glib = generic_library();
    const auto tlib = osu018_library();
    for (const auto& [s, d] : std::initializer_list<std::pair<const char*,
                                                              const char*>>{
             {"DFF", "DFFPOSX1"}, {"FA", "FAX1"}, {"HA", "HAX1"}}) {
      mo.fixed_map.emplace(glib->require(s).value(), tlib->require(d));
    }
    return *technology_map(rtl, tlib, mo);
  }();
  return nl;
}

void BM_SwitchLevelEval(benchmark::State& state) {
  const auto lib = osu018_library();
  const CellSpec& fa = lib->cell(lib->require("FAX1"));
  const SwitchSim sim(fa.network);
  std::uint32_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.eval(p++ & 7));
  }
}
BENCHMARK(BM_SwitchLevelEval);

void BM_UdfmExtraction(benchmark::State& state) {
  const auto lib = osu018_library();
  const CellSpec& fa = lib->cell(lib->require("FAX1"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_cell_udfm(fa));
  }
}
BENCHMARK(BM_UdfmExtraction);

void BM_ParallelSim64(benchmark::State& state) {
  const Netlist& nl = mapped_tv80();
  const CombView view = CombView::build(nl);
  ParallelSimulator sim(nl, view);
  Rng rng(1);
  for (auto _ : state) {
    sim.randomize_sources(rng);
    sim.run();
    benchmark::DoNotOptimize(sim.values());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ParallelSim64);

void BM_FaultSimBatch(benchmark::State& state) {
  const Netlist& nl = mapped_tv80();
  const CombView view = CombView::build(nl);
  static DesignFlow flow(osu018_library(), {});
  const FaultUniverse universe = extract_internal_faults(nl, flow.udfm());
  std::vector<std::vector<Excitation>> exc;
  for (const Fault& f : universe.faults) {
    exc.push_back(build_excitations(f, nl, flow.udfm()));
  }
  FaultSimulator sim(nl, view);
  Rng rng(2);
  std::vector<TestPattern> tests;
  for (int i = 0; i < 64; ++i) {
    TestPattern t;
    for (std::size_t s = 0; s < view.sources.size(); ++s) {
      t.frame0.push_back(rng.flip());
      t.frame1.push_back(rng.flip());
    }
    tests.push_back(std::move(t));
  }
  sim.load(tests, 0, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.detect_mask(exc[i % exc.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FaultSimBatch);

void BM_PodemDetect(benchmark::State& state) {
  const Netlist& nl = mapped_tv80();
  const CombView view = CombView::build(nl);
  static DesignFlow flow(osu018_library(), {});
  const FaultUniverse universe = extract_internal_faults(nl, flow.udfm());
  Podem podem(nl, view, {2500});
  std::size_t i = 0;
  std::vector<V3> test;
  for (auto _ : state) {
    const auto exc =
        build_excitations(universe.faults[i % universe.size()], nl,
                          flow.udfm());
    if (!exc.empty()) {
      benchmark::DoNotOptimize(podem.detect(exc[0], &test));
    }
    ++i;
  }
}
BENCHMARK(BM_PodemDetect);

void BM_TechnologyMap(benchmark::State& state) {
  const Netlist rtl = build_benchmark("tv80").value();
  MapOptions mo;
  const auto glib = generic_library();
  const auto tlib = osu018_library();
  mo.fixed_map.emplace(glib->require("DFF").value(), tlib->require("DFFPOSX1"));
  mo.fixed_map.emplace(glib->require("FA").value(), tlib->require("FAX1"));
  mo.fixed_map.emplace(glib->require("HA").value(), tlib->require("HAX1"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(technology_map(rtl, tlib, mo));
  }
}
BENCHMARK(BM_TechnologyMap);

void BM_PlaceAndRoute(benchmark::State& state) {
  const Netlist& nl = mapped_tv80();
  const Floorplan plan = make_floorplan(nl);
  for (auto _ : state) {
    const Placement placement = global_place(nl, plan, {});
    benchmark::DoNotOptimize(route(nl, placement, {}));
  }
}
BENCHMARK(BM_PlaceAndRoute);

void BM_DfmExtraction(benchmark::State& state) {
  const Netlist& nl = mapped_tv80();
  const Floorplan plan = make_floorplan(nl);
  const Placement placement = global_place(nl, plan, {});
  const RoutingResult routes = route(nl, placement, {});
  static DesignFlow flow(osu018_library(), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extract_dfm_faults(nl, placement, routes, flow.udfm()));
  }
}
BENCHMARK(BM_DfmExtraction);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the run emits the same machine-readable
// report file as every other bench binary.
int main(int argc, char** argv) {
  dfmres::bench::BenchObservability obs("micro_substrates");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
