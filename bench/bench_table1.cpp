// Reproduces Table I of the paper (Section II, "Clustered undetectable
// faults"): for each circuit, the numbers of internal/external DFM
// faults, the undetectable subsets, the gates corresponding to them, and
// the largest cluster of structurally adjacent undetectable faults.
//
// Expected shape (paper): U_In >> U_Ex although F_Ex > F_In, and a single
// cluster S_max holds a large fraction (tens of percent) of U.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.hpp"

using namespace dfmres;
using namespace dfmres::bench;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchObservability obs("table1");
  std::printf("==== Table I: clustered undetectable DFM faults ====\n");
  std::printf("%-10s %8s %8s %7s %7s %6s %6s %7s %9s\n", "Circuit", "F_In",
              "F_Ex", "U_In", "U_Ex", "G_U", "Gmax", "Smax", "%Smax_U");

  const auto circuits =
      selected_circuits({"aes_core", "des_perf", "sparc_exu", "sparc_fpu"});
  for (const auto& name : circuits) {
    const auto t0 = std::chrono::steady_clock::now();
    DesignFlow flow(osu018_library(), bench_flow_options());
    const FlowState state = flow.run_initial(build_benchmark(name).value()).value();
    obs.absorb(state.atpg.counters);
    obs.set_final(state);
    const StateStats s = stats_of(state);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-10s %8zu %8zu %7zu %7zu %6zu %6zu %7zu %8.2f%%  (%.1fs)\n",
                name.c_str(), s.f_in, s.f_ex, s.u_in, s.u_ex, s.g_u, s.gmax,
                s.smax,
                s.u == 0 ? 0.0 : 100.0 * static_cast<double>(s.smax) /
                                     static_cast<double>(s.u),
                elapsed);
  }
  return 0;
}
