// Reproduces Table II of the paper (Section IV): for each of the twelve
// benchmark blocks, the original design and the design produced by the
// two-phase resynthesis procedure with the largest 0 <= q <= 5 that
// improves the coverage; plus the `average` rows.
//
// Columns follow the paper: Max Inc (q), F, U, Cov, T, Smax, %Smax_all,
// Smax_I, %Smax_I, Delay, Power, Rtime. Expected shape: U drops by
// roughly an order of magnitude, coverage reaches ~99%, %Smax_all lands
// near/below p1 = 1%, T barely changes, delay/power stay within the q
// envelope, Rtime does not grow with circuit size.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace dfmres;
using namespace dfmres::bench;

namespace {

struct Row {
  std::string inc;
  StateStats s;
  double delay_rel = 1.0, power_rel = 1.0, rtime = 1.0;
};

void print_row(const char* circuit, const Row& r) {
  std::printf(
      "%-10s %5s %8zu %6zu %7.2f%% %5zu %6zu %8.2f%% %7zu %8.2f%% %8.2f%% "
      "%8.2f%% %7.2f\n",
      circuit, r.inc.c_str(), r.s.f, r.s.u, 100.0 * r.s.coverage, r.s.tests,
      r.s.smax,
      r.s.f == 0 ? 0.0 : 100.0 * static_cast<double>(r.s.smax) /
                             static_cast<double>(r.s.f),
      r.s.smax_internal,
      r.s.smax == 0 ? 0.0 : 100.0 * static_cast<double>(r.s.smax_internal) /
                                static_cast<double>(r.s.smax),
      100.0 * r.delay_rel, 100.0 * r.power_rel, r.rtime);
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("==== Table II: resynthesis results ====\n");
  std::printf("%-10s %5s %8s %6s %8s %5s %6s %9s %7s %9s %9s %9s %7s\n",
              "Circuit", "Inc", "F", "U", "Cov", "T", "Smax", "%Smax_all",
              "Smax_I", "%Smax_I", "Delay", "Power", "Rtime");

  const auto circuits = selected_circuits(
      {"tv80", "systemcaes", "aes_core", "wb_conmax", "des_perf", "sparc_spu",
       "sparc_ffu", "sparc_exu", "sparc_ifu", "sparc_tlu", "sparc_lsu",
       "sparc_fpu"});

  Row avg_orig, avg_resyn;
  std::size_t count = 0;
  double sum[2][7] = {};  // [orig/resyn][F U cov T smax delay power] sums

  for (const auto& name : circuits) {
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    DesignFlow flow(osu018_library(), bench_flow_options());
    const FlowState original = flow.run_initial(build_benchmark(name));
    const double flow_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    Row orig;
    orig.inc = "orig";
    orig.s = stats_of(original);
    print_row(name.c_str(), orig);

    const ResynthesisResult result =
        resynthesize(flow, original, bench_resyn_options());
    Row resyn;
    resyn.inc = result.report.any_accepted
                    ? std::to_string(result.report.q_used) + "%"
                    : "0%";
    resyn.s = stats_of(result.state);
    resyn.delay_rel = resyn.s.delay / orig.s.delay;
    resyn.power_rel = resyn.s.power / orig.s.power;
    resyn.rtime = flow_seconds > 0
                      ? result.report.runtime_seconds / flow_seconds
                      : 0.0;
    print_row("", resyn);
    std::printf("  %s\n", result.state.atpg.counters.summary().c_str());

    ++count;
    const Row* rows[2] = {&orig, &resyn};
    for (int k = 0; k < 2; ++k) {
      sum[k][0] += static_cast<double>(rows[k]->s.f);
      sum[k][1] += static_cast<double>(rows[k]->s.u);
      sum[k][2] += rows[k]->s.coverage;
      sum[k][3] += static_cast<double>(rows[k]->s.tests);
      sum[k][4] += static_cast<double>(rows[k]->s.smax);
      sum[k][5] += rows[k]->delay_rel;
      sum[k][6] += rows[k]->power_rel;
    }
  }

  if (count > 0) {
    const double n = static_cast<double>(count);
    std::printf("---- average over %zu circuits ----\n", count);
    for (int k = 0; k < 2; ++k) {
      std::printf(
          "%-10s %5s %8.0f %6.0f %7.2f%% %5.0f %6.0f %9s %7s %9s %8.2f%% "
          "%8.2f%%\n",
          k == 0 ? "average" : "", k == 0 ? "orig" : "resyn", sum[k][0] / n,
          sum[k][1] / n, 100.0 * sum[k][2] / n, sum[k][3] / n, sum[k][4] / n,
          "-", "-", "-", 100.0 * sum[k][5] / n, 100.0 * sum[k][6] / n);
    }
  }
  return 0;
}
