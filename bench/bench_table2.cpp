// Reproduces Table II of the paper (Section IV): for each of the twelve
// benchmark blocks, the original design and the design produced by the
// two-phase resynthesis procedure with the largest 0 <= q <= 5 that
// improves the coverage; plus the `average` rows.
//
// Columns follow the paper: Max Inc (q), F, U, Cov, T, Smax, %Smax_all,
// Smax_I, %Smax_I, Delay, Power, Rtime. Expected shape: U drops by
// roughly an order of magnitude, coverage reaches ~99%, %Smax_all lands
// near/below p1 = 1%, T barely changes, delay/power stay within the q
// envelope, Rtime does not grow with circuit size.
//
// Besides the table, every run writes a machine-readable BENCH_resyn.json
// (per-block wall times, aggregate ATPG counters, final U / coverage /
// %Smax and the accepted-candidate trace). With DFMRES_BENCH_COLD=1 each
// block additionally runs in the cold-start reference configuration
// (no seed replay / cone trust, no dedup, serial ladder); the bench then
// verifies that final U, %Smax, coverage and the accepted-candidate
// sequence are identical, reports the warm-vs-cold speedup, and exits
// nonzero on any mismatch.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"

using namespace dfmres;
using namespace dfmres::bench;

namespace {

struct Row {
  std::string inc;
  StateStats s;
  double delay_rel = 1.0, power_rel = 1.0, rtime = 1.0;
};

void print_row(const char* circuit, const Row& r) {
  std::printf(
      "%-10s %5s %8zu %6zu %7.2f%% %5zu %6zu %8.2f%% %7zu %8.2f%% %8.2f%% "
      "%8.2f%% %7.2f\n",
      circuit, r.inc.c_str(), r.s.f, r.s.u, 100.0 * r.s.coverage, r.s.tests,
      r.s.smax,
      r.s.f == 0 ? 0.0 : 100.0 * static_cast<double>(r.s.smax) /
                             static_cast<double>(r.s.f),
      r.s.smax_internal,
      r.s.smax == 0 ? 0.0 : 100.0 * static_cast<double>(r.s.smax_internal) /
                                static_cast<double>(r.s.smax),
      100.0 * r.delay_rel, 100.0 * r.power_rel, r.rtime);
}

/// One full flow + resynthesis run of a block in the given configuration.
struct BlockRun {
  StateStats orig;
  StateStats resyn;
  ResynthesisReport report;
  AtpgCounters counters;  ///< flow-wide committed-analysis totals
  double flow_seconds = 0.0;
  double resyn_seconds = 0.0;
};

/// The sweep as a campaign manifest: one resyn job per block, each
/// carrying the bench options (optionally in the cold reference
/// configuration).
CampaignManifest sweep_manifest(const std::vector<std::string>& circuits,
                                bool cold) {
  CampaignManifest manifest;
  for (const auto& name : circuits) {
    CampaignJobSpec job;
    job.name = name;
    job.design = name;
    job.flow = bench_flow_options();
    job.resyn = bench_resyn_options();
    if (cold) apply_cold_mode(job.flow, job.resyn);
    manifest.jobs.push_back(std::move(job));
  }
  return manifest;
}

/// Runs the sweep through the campaign scheduler, DFMRES_BENCH_JOBS
/// blocks in flight. Aborts (value()) on campaign- or job-level errors:
/// a bench sweep has no partial-success mode.
CampaignResult run_sweep(const std::vector<std::string>& circuits,
                         bool cold) {
  CampaignOptions options;
  options.max_parallel_jobs = bench_jobs();
  CampaignResult result =
      run_campaign(sweep_manifest(circuits, cold), options).value();
  for (const auto& job : result.jobs) {
    if (!job.ok()) {
      std::fprintf(stderr, "block '%s' failed: %s\n", job.name.c_str(),
                   job.status.to_string().c_str());
      std::exit(1);
    }
  }
  return result;
}

BlockRun block_run(const CampaignJobResult& job) {
  BlockRun out;
  out.orig = stats_of(*job.initial);
  out.resyn = stats_of(*job.final_state);
  out.report = *job.resyn;
  out.counters = job.atpg_totals;
  out.resyn_seconds = out.report.runtime_seconds;
  // The job clock covers design build + flow + resynthesis; the flow
  // share is what Rtime normalizes against.
  out.flow_seconds = std::max(0.0, job.seconds - out.resyn_seconds);
  return out;
}

/// Canonical form of the accepted-candidate sequence, the identity that
/// warm-start optimizations must preserve.
std::string accepted_trace(const ResynthesisReport& report) {
  std::string out;
  for (const IterationRecord& r : report.trace) {
    if (!r.accepted) continue;
    out += "q" + std::to_string(r.q) + "p" + std::to_string(r.phase) + ":" +
           r.banned_through + (r.via_backtracking ? "*" : "") + "/U" +
           std::to_string(r.undetectable) + "/S" + std::to_string(r.smax) +
           ";";
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string block_json(const std::string& name, const char* mode,
                       const BlockRun& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"circuit\": \"%s\", \"mode\": \"%s\", \"flow_seconds\": %.3f, "
      "\"resyn_seconds\": %.3f, \"q_used\": %d, \"final_u\": %zu, "
      "\"final_coverage\": %.6f, \"final_smax\": %zu, \"final_faults\": %zu, "
      "\"tests\": %zu, \"accepted\": \"%s\", "
      "\"candidates_built\": %zu, \"u_in_probes\": %zu, \"full_probes\": %zu, "
      "\"sig_hits\": %zu, \"stash_commits\": %zu, \"build_seconds\": %.3f, "
      "\"u_in_seconds\": %.3f, \"probe_seconds\": %.3f, "
      "\"signoff_seconds\": %.3f, \"atpg\": ",
      name.c_str(), mode, r.flow_seconds, r.resyn_seconds, r.report.q_used,
      r.resyn.u, r.resyn.coverage, r.resyn.smax, r.resyn.f, r.resyn.tests,
      json_escape(accepted_trace(r.report)).c_str(),
      r.report.candidates_built, r.report.u_in_probes, r.report.full_probes,
      r.report.sig_hits, r.report.stash_commits, r.report.build_seconds,
      r.report.u_in_seconds, r.report.probe_seconds,
      r.report.signoff_seconds);
  return std::string(buf) + r.counters.json() + "}";
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchObservability obs("table2");
  const bool compare_cold = bench_cold_mode();
  std::printf("==== Table II: resynthesis results ====\n");
  std::printf("%-10s %5s %8s %6s %8s %5s %6s %9s %7s %9s %9s %9s %7s\n",
              "Circuit", "Inc", "F", "U", "Cov", "T", "Smax", "%Smax_all",
              "Smax_I", "%Smax_I", "Delay", "Power", "Rtime");

  const auto circuits = selected_circuits(
      {"tv80", "systemcaes", "aes_core", "wb_conmax", "des_perf", "sparc_spu",
       "sparc_ffu", "sparc_exu", "sparc_ifu", "sparc_tlu", "sparc_lsu",
       "sparc_fpu"});

  std::size_t count = 0;
  double sum[2][7] = {};  // [orig/resyn][F U cov T smax delay power] sums
  std::vector<std::string> json_blocks;
  bool mismatch = false;
  double warm_total = 0.0, cold_total = 0.0;

  // The whole sweep goes through the campaign scheduler
  // (DFMRES_BENCH_JOBS blocks in flight; per-block results are
  // bit-identical to the serial sweep).
  const CampaignResult warm_sweep = run_sweep(circuits, /*cold=*/false);
  std::optional<CampaignResult> cold_sweep;
  if (compare_cold) cold_sweep.emplace(run_sweep(circuits, /*cold=*/true));
  std::printf("sweep: %d job(s) in flight x %d lane(s), warm wall %.2fs\n",
              warm_sweep.jobs_in_flight, warm_sweep.inner_threads,
              warm_sweep.seconds);

  for (std::size_t b = 0; b < circuits.size(); ++b) {
    const std::string& name = circuits[b];
    const BlockRun warm = block_run(warm_sweep.jobs[b]);
    obs.absorb(warm.counters);
    obs.absorb(warm.report);

    Row orig;
    orig.inc = "orig";
    orig.s = warm.orig;
    print_row(name.c_str(), orig);

    Row resyn;
    resyn.inc = warm.report.any_accepted
                    ? std::to_string(warm.report.q_used) + "%"
                    : "0%";
    resyn.s = warm.resyn;
    resyn.delay_rel = resyn.s.delay / orig.s.delay;
    resyn.power_rel = resyn.s.power / orig.s.power;
    resyn.rtime = warm.flow_seconds > 0
                      ? warm.report.runtime_seconds / warm.flow_seconds
                      : 0.0;
    print_row("", resyn);
    std::printf("  %s\n", warm.counters.summary().c_str());
    std::printf("  loop: %zu built (%.2fs), %zu u_in probes (%.2fs), "
                "%zu full probes (%.2fs), %zu sig hits, %zu stash commits, "
                "signoff %.2fs\n",
                warm.report.candidates_built, warm.report.build_seconds,
                warm.report.u_in_probes, warm.report.u_in_seconds,
                warm.report.full_probes, warm.report.probe_seconds,
                warm.report.sig_hits, warm.report.stash_commits,
                warm.report.signoff_seconds);
    json_blocks.push_back(block_json(name, "warm", warm));

    if (compare_cold) {
      const BlockRun cold = block_run(cold_sweep->jobs[b]);
      json_blocks.push_back(block_json(name, "cold", cold));
      warm_total += warm.resyn_seconds;
      cold_total += cold.resyn_seconds;
      const bool same = warm.resyn.u == cold.resyn.u &&
                        warm.resyn.smax == cold.resyn.smax &&
                        warm.resyn.f == cold.resyn.f &&
                        warm.resyn.coverage == cold.resyn.coverage &&
                        accepted_trace(warm.report) ==
                            accepted_trace(cold.report);
      std::printf("  cold check: %s  warm %.2fs vs cold %.2fs  speedup %.2fx\n",
                  same ? "identical" : "MISMATCH", warm.resyn_seconds,
                  cold.resyn_seconds,
                  warm.resyn_seconds > 0
                      ? cold.resyn_seconds / warm.resyn_seconds
                      : 0.0);
      if (!same) {
        std::printf(
            "  MISMATCH detail: U %zu/%zu Smax %zu/%zu F %zu/%zu\n"
            "    warm trace: %s\n    cold trace: %s\n",
            warm.resyn.u, cold.resyn.u, warm.resyn.smax, cold.resyn.smax,
            warm.resyn.f, cold.resyn.f, accepted_trace(warm.report).c_str(),
            accepted_trace(cold.report).c_str());
        mismatch = true;
      }
    }

    ++count;
    const Row* rows[2] = {&orig, &resyn};
    for (int k = 0; k < 2; ++k) {
      sum[k][0] += static_cast<double>(rows[k]->s.f);
      sum[k][1] += static_cast<double>(rows[k]->s.u);
      sum[k][2] += rows[k]->s.coverage;
      sum[k][3] += static_cast<double>(rows[k]->s.tests);
      sum[k][4] += static_cast<double>(rows[k]->s.smax);
      sum[k][5] += rows[k]->delay_rel;
      sum[k][6] += rows[k]->power_rel;
    }
  }

  if (count > 0) {
    const double n = static_cast<double>(count);
    std::printf("---- average over %zu circuits ----\n", count);
    for (int k = 0; k < 2; ++k) {
      std::printf(
          "%-10s %5s %8.0f %6.0f %7.2f%% %5.0f %6.0f %9s %7s %9s %8.2f%% "
          "%8.2f%%\n",
          k == 0 ? "average" : "", k == 0 ? "orig" : "resyn", sum[k][0] / n,
          sum[k][1] / n, 100.0 * sum[k][2] / n, sum[k][3] / n, sum[k][4] / n,
          "-", "-", "-", 100.0 * sum[k][5] / n, 100.0 * sum[k][6] / n);
    }
  }
  if (compare_cold && warm_total > 0) {
    std::printf("---- cold-start comparison: warm %.2fs cold %.2fs "
                "speedup %.2fx%s ----\n",
                warm_total, cold_total, cold_total / warm_total,
                mismatch ? "  (RESULT MISMATCH)" : "");
  }

  std::ofstream json("BENCH_resyn.json");
  json << "{\"bench\": \"resyn\", \"cold_compare\": "
       << (compare_cold ? "true" : "false") << ", \"blocks\": [\n";
  for (std::size_t i = 0; i < json_blocks.size(); ++i) {
    json << "  " << json_blocks[i] << (i + 1 < json_blocks.size() ? "," : "")
         << "\n";
  }
  json << "]}\n";
  std::printf("wrote BENCH_resyn.json (%zu block records)\n",
              json_blocks.size());
  return mismatch ? 1 : 0;
}
