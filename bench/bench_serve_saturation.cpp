// Saturation bench for the `dfmres serve` daemon: submit→report
// latency percentiles versus offered load, with one load level pushed
// past the admission bound so the explicit kResourceExhausted rejection
// path is exercised and measured rather than assumed.
//
// An in-process daemon (4 workers) serves single-job flow campaigns
// over its Unix-domain socket; each load level opens `offered`
// concurrent client connections, every client timing its own
// submit→report round trip. Writes `BENCH_serve_saturation.json`
// (schema dfmres-bench-serve-v1) with p50/p95/p99 per level.
//
// Overrides: DFMRES_BENCH_SERVE_WORKERS (default 4),
// DFMRES_BENCH_SERVE_INFLIGHT (admission bound, default 8).

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/request.hpp"
#include "src/core/schemas.hpp"
#include "src/core/serve.hpp"
#include "src/util/cancel.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"

using namespace dfmres;

namespace {

using Clock = std::chrono::steady_clock;

int env_int(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// One client round trip: connect, submit a single-job campaign, read
/// events until the terminal one. Fills `latency_s` on success.
struct Submission {
  bool accepted = false;
  bool rejected = false;
  double latency_s = 0.0;
};

Submission submit_and_wait(const std::string& socket_path,
                           const std::string& id, std::uint64_t seed) {
  Submission out;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return out;
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }

  CampaignJobSpec job;
  job.name = id;
  job.design = "sparc_tlu";
  job.mode = CampaignJobSpec::Mode::Flow;
  job.flow.atpg.random_batches = 4;
  job.flow.atpg.backtrack_limit = 1000;
  job.flow.atpg.seed = seed;
  Request request;
  request.payload = RunRequest{id, std::move(job)};
  const std::string line = request_to_json(request) + "\n";

  const auto t0 = Clock::now();
  for (std::size_t off = 0; off < line.size();) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return out;
    }
    off += static_cast<std::size_t>(n);
  }

  std::string buf;
  char chunk[4096];
  bool done = false;
  while (!done) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string text = buf.substr(start, nl - start);
      start = nl + 1;
      const auto doc = JsonValue::parse(text);
      if (!doc) continue;
      const JsonValue* ev = doc->find("event");
      if (ev == nullptr || !ev->is_string()) continue;
      if (ev->as_string() == "accepted") out.accepted = true;
      if (ev->as_string() == "rejected" || ev->as_string() == "error") {
        out.rejected = true;
        done = true;
        break;
      }
      if (ev->as_string() == "report") {
        out.latency_s = std::chrono::duration<double>(Clock::now() - t0).count();
        done = true;
        break;
      }
    }
    buf.erase(0, start);
  }
  ::close(fd);
  return out;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return -1.0;
  const std::size_t n = sorted.size();
  const std::size_t idx = std::min(
      n - 1, static_cast<std::size_t>(p * static_cast<double>(n - 1) + 0.5));
  return sorted[idx];
}

struct Level {
  int offered = 0;
  int accepted = 0;
  int rejected = 0;
  double wall_s = 0.0;
  double p50_ms = -1.0;
  double p95_ms = -1.0;
  double p99_ms = -1.0;
  double jobs_per_s = 0.0;
};

}  // namespace

int main() {
  const int workers = env_int("DFMRES_BENCH_SERVE_WORKERS", 4);
  const int max_inflight = env_int("DFMRES_BENCH_SERVE_INFLIGHT", 8);

  const std::string root =
      "BENCH_serve_root_" + std::to_string(::getpid());
  const std::string sock = root + ".sock";

  ServeOptions options;
  options.campaign_root = root;
  options.socket_path = sock;
  options.workers = workers;
  options.total_threads = workers;
  options.max_inflight_jobs = static_cast<std::size_t>(max_inflight);
  // One client connection per submission at every level.
  options.max_client_campaigns = 4096;
  options.poll_interval = std::chrono::milliseconds(10);
  std::thread daemon([&options] {
    const auto stats = run_serve(options);
    if (!stats) {
      std::fprintf(stderr, "serve: %s\n", stats.status().to_string().c_str());
    }
  });
  // Wait for the socket to come up.
  for (int i = 0; i < 200 && !path_exists(sock); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // The last level offers more concurrent jobs than the admission
  // bound, so its rejected count must be nonzero: the bench verifies
  // the backpressure contract while measuring it.
  std::vector<int> offered_levels = {1, 2, 4, max_inflight, 2 * max_inflight};
  std::vector<Level> levels;
  int job_serial = 0;
  for (const int offered : offered_levels) {
    Level level;
    level.offered = offered;
    std::vector<Submission> results(static_cast<std::size_t>(offered));
    std::vector<std::thread> clients;
    const auto t0 = Clock::now();
    for (int i = 0; i < offered; ++i) {
      const std::string id = "bench-" + std::to_string(job_serial++);
      const std::uint64_t seed = static_cast<std::uint64_t>(1000 + i);
      clients.emplace_back([&results, &sock, i, id, seed] {
        results[static_cast<std::size_t>(i)] = submit_and_wait(sock, id, seed);
      });
    }
    for (auto& t : clients) t.join();
    level.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

    std::vector<double> latencies;
    for (const Submission& s : results) {
      if (s.rejected) {
        ++level.rejected;
      } else if (s.latency_s > 0.0) {
        ++level.accepted;
        latencies.push_back(s.latency_s);
      }
    }
    std::sort(latencies.begin(), latencies.end());
    level.p50_ms = percentile(latencies, 0.50) * 1e3;
    level.p95_ms = percentile(latencies, 0.95) * 1e3;
    level.p99_ms = percentile(latencies, 0.99) * 1e3;
    if (level.wall_s > 0.0) {
      level.jobs_per_s = static_cast<double>(level.accepted) / level.wall_s;
    }
    std::printf("offered %3d: accepted %3d rejected %3d  p50 %7.1fms  "
                "p95 %7.1fms  p99 %7.1fms  %.1f jobs/s\n",
                level.offered, level.accepted, level.rejected, level.p50_ms,
                level.p95_ms, level.p99_ms, level.jobs_per_s);
    levels.push_back(level);
  }

  // Drain the daemon so the root merges everything and the thread exits.
  {
    Request request;
    request.payload = DrainRequest{};
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const std::string line = request_to_json(request) + "\n";
      (void)!::write(fd, line.data(), line.size());
      char sink[256];
      while (::read(fd, sink, sizeof(sink)) > 0) {
      }
    }
    if (fd >= 0) ::close(fd);
  }
  daemon.join();

  const Level& saturated = levels.back();
  const bool rejections_seen = saturated.rejected > 0;

  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kBenchServe);
  w.field("workers", static_cast<std::int64_t>(workers));
  w.field("max_inflight_jobs", static_cast<std::int64_t>(max_inflight));
  w.field("rejections_seen", rejections_seen);
  w.key("levels");
  w.begin_array();
  for (const Level& level : levels) {
    w.begin_object();
    w.field("offered", static_cast<std::int64_t>(level.offered));
    w.field("accepted", static_cast<std::int64_t>(level.accepted));
    w.field("rejected", static_cast<std::int64_t>(level.rejected));
    w.field("wall_s", level.wall_s);
    w.field("p50_ms", level.p50_ms);
    w.field("p95_ms", level.p95_ms);
    w.field("p99_ms", level.p99_ms);
    w.field("jobs_per_s", level.jobs_per_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out("BENCH_serve_saturation.json");
  out << w.take() << "\n";
  std::printf("wrote BENCH_serve_saturation.json\n");

  if (!rejections_seen) {
    std::fprintf(stderr, "expected admission rejections at offered=%d "
                 "with max_inflight=%d\n", saturated.offered, max_inflight);
    return 1;
  }
  return 0;
}
