#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/circuits/benchmarks.hpp"
#include "src/core/campaign.hpp"
#include "src/core/flow.hpp"
#include "src/core/resynthesis.hpp"
#include "src/core/run_report.hpp"
#include "src/library/osu018.hpp"
#include "src/util/metrics.hpp"
#include "src/util/trace.hpp"

namespace dfmres::bench {

/// Flow options tuned for benchmark runs: slightly smaller search budgets
/// than the library defaults keep a full 12-circuit sweep tractable on
/// one core without changing any observed trend. Fault-simulation
/// parallelism follows `DFMRES_BENCH_THREADS` (0/unset = hardware);
/// results are bit-identical across thread counts, so this only moves
/// wall clock.
inline FlowOptions bench_flow_options() {
  FlowOptions options;
  options.atpg.random_batches = 4;
  options.atpg.backtrack_limit = 1000;
  if (const char* env = std::getenv("DFMRES_BENCH_THREADS")) {
    options.atpg.num_threads = std::atoi(env);
  }
  return options;
}

inline ResynthesisOptions bench_resyn_options() {
  ResynthesisOptions options;
  options.max_iterations_per_phase = 12;
  options.reanalyses_per_iteration = 10;
  return options;
}

/// DFMRES_BENCH_COLD=1 selects the cold-start reference configuration:
/// no seed-test replay / cone trust, no candidate dedup, serial ladder.
/// Results are identical to the default warm configuration; only wall
/// clock moves (bench_table2 verifies this when it runs both).
inline bool bench_cold_mode() {
  const char* env = std::getenv("DFMRES_BENCH_COLD");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline void apply_cold_mode(FlowOptions& flow_options,
                            ResynthesisOptions& resyn_options) {
  flow_options.warm_start = false;
  resyn_options.dedup_candidates = false;
  resyn_options.parallel_ladder = false;
}

/// DFMRES_BENCH_JOBS: campaign jobs in flight for the scheduler-driven
/// benches (1/unset = the historical serial sweep). Results are
/// bit-identical for every value; only wall clock moves.
inline int bench_jobs() {
  if (const char* env = std::getenv("DFMRES_BENCH_JOBS")) {
    const int jobs = std::atoi(env);
    if (jobs > 0) return jobs;
  }
  return 1;
}

/// Environment override: DFMRES_BENCH_CIRCUITS="tv80,aes_core" restricts a
/// bench to a subset (useful while iterating).
inline std::vector<std::string> selected_circuits(
    std::initializer_list<const char*> defaults) {
  std::vector<std::string> out;
  if (const char* env = std::getenv("DFMRES_BENCH_CIRCUITS")) {
    std::string s(env);
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t comma = s.find(',', pos);
      const std::size_t end = comma == std::string::npos ? s.size() : comma;
      if (end > pos) out.push_back(s.substr(pos, end - pos));
      pos = end + 1;
    }
  }
  if (out.empty()) {
    for (const char* name : defaults) out.emplace_back(name);
  }
  return out;
}

/// Uniform observability for the bench binaries: construct one at the
/// top of main with the bench name; the destructor writes
/// `BENCH_<name>_report.json` with the same run-report schema the CLI
/// emits, plus `BENCH_<name>_metrics.json` when anything was absorbed.
/// `DFMRES_BENCH_TRACE=1` additionally enables the span tracer and
/// writes `BENCH_<name>_trace.json` — off by default so timing benches
/// measure the disabled-tracer fast path.
class BenchObservability {
 public:
  explicit BenchObservability(std::string name)
      : name_(std::move(name)),
        report_("bench_" + name_, /*circuit=*/"various"),
        t0_(std::chrono::steady_clock::now()) {
    const char* env = std::getenv("DFMRES_BENCH_TRACE");
    trace_ = env != nullptr && env[0] != '\0' && env[0] != '0';
    if (trace_) Tracer::instance().enable();
  }

  BenchObservability(const BenchObservability&) = delete;
  BenchObservability& operator=(const BenchObservability&) = delete;

  /// Folds one run's ATPG instrumentation into the bench-local registry.
  void absorb(const AtpgCounters& counters) {
    registry_.absorb(counters);
    absorbed_ = true;
  }
  /// Folds a resynthesis report (counters + convergence series).
  void absorb(const ResynthesisReport& report) {
    publish_metrics(report, registry_);
    report_.set_resynthesis(report);
    absorbed_ = true;
  }
  void set_final(const FlowState& state) { report_.set_final(state); }
  [[nodiscard]] MetricsRegistry& registry() { return registry_; }

  ~BenchObservability() {
    report_.set_runtime_seconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count());
    const std::string report_path = "BENCH_" + name_ + "_report.json";
    if (const Status s = report_.write_json(report_path); s.is_ok()) {
      std::printf("wrote %s\n", report_path.c_str());
    }
    if (absorbed_) {
      const std::string metrics_path = "BENCH_" + name_ + "_metrics.json";
      if (const Status s = registry_.write_json(metrics_path); s.is_ok()) {
        std::printf("wrote %s\n", metrics_path.c_str());
      }
    }
    if (trace_) {
      const std::string trace_path = "BENCH_" + name_ + "_trace.json";
      if (const Status s = Tracer::instance().write_chrome_json(trace_path);
          s.is_ok()) {
        std::printf("wrote %s\n", trace_path.c_str());
      }
      Tracer::instance().disable();
    }
  }

 private:
  std::string name_;
  RunReport report_;
  MetricsRegistry registry_;
  std::chrono::steady_clock::time_point t0_;
  bool trace_ = false;
  bool absorbed_ = false;
};

struct StateStats {
  std::size_t f = 0, f_in = 0, f_ex = 0;
  std::size_t u = 0, u_in = 0, u_ex = 0;
  std::size_t g_u = 0, gmax = 0, smax = 0, smax_internal = 0;
  std::size_t tests = 0;
  double coverage = 0, delay = 0, power = 0;
};

inline StateStats stats_of(const FlowState& s) {
  StateStats out;
  out.f = s.num_faults();
  out.f_in = s.universe.count_internal();
  out.f_ex = out.f - out.f_in;
  out.u = s.num_undetectable();
  for (std::size_t i = 0; i < s.universe.size(); ++i) {
    out.u_in += s.universe.faults[i].scope == FaultScope::Internal &&
                s.atpg.status[i] == FaultStatus::Undetectable;
  }
  out.u_ex = out.u - out.u_in;
  out.g_u = s.clusters.gates_u.size();
  out.gmax = s.clusters.gmax.size();
  out.smax = s.smax();
  out.smax_internal = s.clusters.smax_internal(s.universe);
  out.tests = s.atpg.tests.size();
  out.coverage = s.coverage();
  out.delay = s.timing.critical_delay;
  out.power = s.timing.total_power();
  return out;
}

}  // namespace dfmres::bench
