// Reproduces the behavior illustrated by Fig. 2 of the paper: phase 1
// repeatedly attacks the current largest cluster (Cluster A, then
// Cluster B, ...) until the %Smax target p1 is met; phase 2 then sweeps
// the remaining undetectable faults circuit-wide. The bench prints the
// per-accepted-iteration trajectory of (largest cluster size, total U)
// and an ASCII rendering of the decay.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace dfmres;
using namespace dfmres::bench;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchObservability obs("fig2_phases");
  const auto circuits = selected_circuits({"tv80"});
  // The blocks run through the campaign scheduler (DFMRES_BENCH_JOBS in
  // flight); each trace below is bit-identical to a standalone run.
  CampaignManifest manifest;
  for (const auto& name : circuits) {
    CampaignJobSpec job;
    job.name = name;
    job.design = name;
    job.flow = bench_flow_options();
    job.resyn = bench_resyn_options();
    manifest.jobs.push_back(std::move(job));
  }
  CampaignOptions campaign_options;
  campaign_options.max_parallel_jobs = bench_jobs();
  const CampaignResult sweep = run_campaign(manifest, campaign_options).value();
  for (const CampaignJobResult& jobres : sweep.jobs) {
    const std::string& name = jobres.name;
    if (!jobres.ok()) {
      std::fprintf(stderr, "block '%s' failed: %s\n", name.c_str(),
                   jobres.status.to_string().c_str());
      return 1;
    }
    const FlowState& original = *jobres.initial;
    struct {
      const FlowState& state;
      const ResynthesisReport& report;
    } result{*jobres.final_state, *jobres.resyn};
    obs.absorb(jobres.atpg_totals);
    obs.absorb(result.report);
    obs.set_final(result.state);

    std::printf("==== Fig. 2 trace: %s ====\n", name.c_str());
    std::printf("start: Smax=%zu U=%zu\n", original.smax(),
                original.num_undetectable());
    std::printf("%4s %3s %5s %8s %8s %12s\n", "iter", "q", "phase", "Smax",
                "U", "via");
    std::size_t max_smax = original.smax();
    int iter = 0;
    for (const IterationRecord& r : result.report.trace) {
      if (!r.accepted) continue;
      ++iter;
      std::printf("%4d %2d%% %5d %8zu %8zu %12s\n", iter, r.q, r.phase,
                  r.smax, r.undetectable,
                  r.via_backtracking ? "backtracking" : "direct");
      max_smax = std::max(max_smax, r.smax);
    }
    // ASCII decay of the largest cluster (the paper's Cluster A, B, ...
    // being broken up one after the other).
    std::printf("largest-cluster decay:\n");
    const auto bar = [&](std::size_t v) {
      const int width =
          max_smax == 0 ? 0
                        : static_cast<int>(60.0 * static_cast<double>(v) /
                                           static_cast<double>(max_smax));
      for (int i = 0; i < width; ++i) std::printf("#");
      std::printf(" %zu\n", v);
    };
    bar(original.smax());
    for (const IterationRecord& r : result.report.trace) {
      if (r.accepted) bar(r.smax);
    }
    std::printf("final: Smax=%zu U=%zu coverage=%.2f%%\n",
                result.state.smax(), result.state.num_undetectable(),
                100.0 * result.state.coverage());
  }
  return 0;
}
