// Probe-load economics of the copy-on-write overlays (FlowOptions::
// probe_overlays), in two parts:
//
// 1. Local-edit probe sweep (the gated number): a spread of single-gate
//    function-preserving remaps across the circuit — the cone-sized
//    rewrites the resynthesis inner loop probes most — each probed with
//    overlays on and off. Both modes must agree fault-for-fault on
//    u_in, and the ratio of frame bytes materialized per probe is the
//    O(netlist) -> O(cone) reduction the overlay work exists to deliver
//    (scripts/check.sh gates on >= 10x).
//
// 2. Search bit-identity + aggregate economics: the same short
//    resynthesis search runs end to end in both modes and must be
//    bit-identical (statuses, accepted trace, final counts). Its
//    aggregate bytes/probe is reported for context; it mixes in
//    deep-ban ladder candidates whose replacements rewrite a large
//    fraction of this (small) benchmark, so its ratio measures the
//    workload's edit sizes, not the overlay mechanism.
//
// Overrides: first argv = circuit name (default tv80);
// DFMRES_BENCH_REPEATS=N takes best-of-N wall clock per search mode;
// DFMRES_BENCH_PROBES=N caps the local-edit sweep (default 48).
//
// Artifacts: BENCH_probe_overlay_report.json (run-report schema, the
// overlay run) and BENCH_probe_overlay_compare.json
// (dfmres-bench-probe-overlay-v1, both modes side by side) — both
// readable by scripts/summarize_report.py.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/schemas.hpp"
#include "src/netlist/extract.hpp"
#include "src/synth/mapper.hpp"
#include "src/util/json.hpp"

using namespace dfmres;
using namespace dfmres::bench;

namespace {

struct ModeRun {
  double seconds = 0.0;
  ResynthesisReport report;
  StateStats stats;
  std::vector<FaultStatus> statuses;
  std::string trace;
};

std::string accepted_trace(const ResynthesisReport& report) {
  std::string out;
  for (const IterationRecord& r : report.trace) {
    if (!r.accepted) continue;
    out += "q" + std::to_string(r.q) + "p" + std::to_string(r.phase) + ":" +
           r.banned_through + "/U" + std::to_string(r.undetectable) + ";";
  }
  return out;
}

std::uint64_t probes_of(const ResynthesisReport& r) {
  return static_cast<std::uint64_t>(r.u_in_probes + r.full_probes);
}

double bytes_per_probe(const ResynthesisReport& r) {
  const std::uint64_t probes = probes_of(r);
  return probes == 0 ? 0.0
                     : static_cast<double>(r.probe_frame_bytes) /
                           static_cast<double>(probes);
}

void write_mode(JsonWriter& w, const char* key, const ModeRun& run) {
  w.key(key);
  w.begin_object();
  w.field("wall_seconds", run.seconds);
  w.field("probes", probes_of(run.report));
  w.field("probe_frame_bytes", run.report.probe_frame_bytes);
  w.field("probe_full_loads", run.report.probe_full_loads);
  w.field("probe_overlay_loads", run.report.probe_overlay_loads);
  w.field("probe_load_seconds", run.report.probe_load_seconds);
  w.field("bytes_per_probe", bytes_per_probe(run.report));
  w.field("final_undetectable", static_cast<std::uint64_t>(run.stats.u));
  w.field("final_smax", static_cast<std::uint64_t>(run.stats.smax));
  w.end_object();
}

/// Per-mode accumulator for the local-edit probe sweep.
struct ProbeSweep {
  std::uint64_t probes = 0;
  std::uint64_t frame_bytes = 0;
  std::uint64_t full_loads = 0;
  std::uint64_t overlay_loads = 0;
  double seconds = 0.0;

  [[nodiscard]] double bytes_per_probe() const {
    return probes == 0 ? 0.0
                       : static_cast<double>(frame_bytes) /
                             static_cast<double>(probes);
  }
};

void write_sweep(JsonWriter& w, const char* key, const ProbeSweep& s) {
  w.key(key);
  w.begin_object();
  w.field("probes", s.probes);
  w.field("frame_bytes", s.frame_bytes);
  w.field("full_loads", s.full_loads);
  w.field("overlay_loads", s.overlay_loads);
  w.field("seconds", s.seconds);
  w.field("bytes_per_probe", s.bytes_per_probe());
  w.end_object();
}

/// Re-maps the single-gate region {g} with g's own cell banned, splicing
/// the replacement into a copy of `base`. Empty when the mapper cannot
/// express the gate without its cell (skip that gate).
std::optional<Netlist> remap_single_gate(const Netlist& base, GateId g) {
  Netlist out = base;
  const GateId region[] = {g};
  auto sub = extract_subcircuit(out, region);
  if (!sub) return std::nullopt;
  MapOptions mo;
  mo.banned.assign(base.library().num_cells(), false);
  mo.banned[base.gate(g).cell.value()] = true;
  auto mapped = technology_map(sub->circuit, osu018_library(), mo);
  if (!mapped) return std::nullopt;
  if (!replace_region(out, *sub, *mapped).has_value()) return std::nullopt;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchObservability obs("probe_overlay");
  const std::string circuit = argc > 1 ? argv[1] : "tv80";
  const int repeats = [] {
    const char* env = std::getenv("DFMRES_BENCH_REPEATS");
    return env ? std::max(1, std::atoi(env)) : 1;
  }();
  const std::size_t max_probes = [] {
    const char* env = std::getenv("DFMRES_BENCH_PROBES");
    return env ? static_cast<std::size_t>(std::max(1, std::atoi(env))) : 48u;
  }();

  std::printf("==== probe overlay economics: %s ====\n", circuit.c_str());
  const Netlist rtl = build_benchmark(circuit).value();
  using Clock = std::chrono::steady_clock;

  // ---- part 1: local-edit probe sweep (the gated measurement) ----
  // One committed flow per mode over the same design; both probe the
  // identical edited netlists, so the u_in verdicts must agree exactly.
  FlowOptions on_options = bench_flow_options();
  on_options.probe_overlays = true;
  FlowOptions off_options = bench_flow_options();
  off_options.probe_overlays = false;
  DesignFlow flow_on(osu018_library(), on_options);
  const FlowState s_on = flow_on.run_initial(rtl).value();
  DesignFlow flow_off(osu018_library(), off_options);
  const FlowState s_off = flow_off.run_initial(rtl).value();

  // Deterministic spread: walk the live combinational gates with a
  // stride that lands about `max_probes` single-gate remaps.
  std::vector<GateId> comb;
  for (GateId g : s_on.netlist.live_gates()) {
    if (!s_on.netlist.cell_of(g).sequential) comb.push_back(g);
  }
  const std::size_t stride = std::max<std::size_t>(1, comb.size() / max_probes);
  ProbeSweep sweep_on, sweep_off;
  bool sweep_identical = true;
  for (std::size_t i = 0; i < comb.size() && sweep_on.probes < max_probes;
       i += stride) {
    const std::optional<Netlist> edited =
        remap_single_gate(s_on.netlist, comb[i]);
    if (!edited) continue;
    const auto t0 = Clock::now();
    ProbeSession p_on = flow_on.probe();
    const auto u_on = p_on.count_undetectable_internal(*edited);
    const auto t1 = Clock::now();
    ProbeSession p_off = flow_off.probe();
    const auto u_off = p_off.count_undetectable_internal(*edited);
    const auto t2 = Clock::now();
    if (!u_on || !u_off || *u_on != *u_off) {
      sweep_identical = false;
      break;
    }
    const AtpgCounters& c_on = p_on.counters();
    const AtpgCounters& c_off = p_off.counters();
    ++sweep_on.probes;
    sweep_on.frame_bytes += c_on.frame_bytes_materialized;
    sweep_on.full_loads += c_on.full_loads;
    sweep_on.overlay_loads += c_on.overlay_loads;
    sweep_on.seconds += std::chrono::duration<double>(t1 - t0).count();
    ++sweep_off.probes;
    sweep_off.frame_bytes += c_off.frame_bytes_materialized;
    sweep_off.full_loads += c_off.full_loads;
    sweep_off.overlay_loads += c_off.overlay_loads;
    sweep_off.seconds += std::chrono::duration<double>(t2 - t1).count();
  }
  const double local_ratio =
      sweep_on.bytes_per_probe() == 0.0
          ? 0.0
          : sweep_off.bytes_per_probe() / sweep_on.bytes_per_probe();
  std::printf("local edits: %llu probes\n",
              static_cast<unsigned long long>(sweep_on.probes));
  std::printf("  full:    %8.0f bytes/probe (%llu full loads, %.2fs)\n",
              sweep_off.bytes_per_probe(),
              static_cast<unsigned long long>(sweep_off.full_loads),
              sweep_off.seconds);
  std::printf("  overlay: %8.0f bytes/probe (%llu overlay loads, %.2fs)\n",
              sweep_on.bytes_per_probe(),
              static_cast<unsigned long long>(sweep_on.overlay_loads),
              sweep_on.seconds);
  std::printf("bytes-per-probe ratio (full/overlay): %.1fx\n", local_ratio);

  // ---- part 2: end-to-end search bit-identity + aggregate context ----
  const auto run_mode = [&](bool overlays) {
    ModeRun best;
    best.seconds = std::numeric_limits<double>::max();
    for (int rep = 0; rep < repeats; ++rep) {
      FlowOptions flow_options = bench_flow_options();
      flow_options.probe_overlays = overlays;
      // Short search matching OverlayHeavy.Tv80ResynthesisBitIdentical:
      // enough accepted steps to exercise commit/rebase in both modes.
      ResynthesisOptions resyn_options = bench_resyn_options();
      resyn_options.q_max = 1;
      resyn_options.max_iterations_per_phase = 4;
      resyn_options.reanalyses_per_iteration = 16;
      DesignFlow flow(osu018_library(), flow_options);
      const FlowState original = flow.run_initial(rtl).value();
      const auto t0 = Clock::now();
      ResynthesisResult result =
          resynthesize(flow, original, resyn_options).value();
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (seconds < best.seconds) {
        best.seconds = seconds;
        best.stats = stats_of(result.state);
        best.statuses = result.state.atpg.status;
        best.trace = accepted_trace(result.report);
        best.report = std::move(result.report);
        if (overlays) obs.set_final(result.state);
      }
    }
    return best;
  };

  const ModeRun full = run_mode(false);
  const ModeRun overlay = run_mode(true);
  obs.absorb(overlay.report);

  // The overlays are a pure acceleration: any observable difference is a
  // bug, and the ratios above would be meaningless.
  const bool identical = sweep_identical && full.statuses == overlay.statuses &&
                         full.trace == overlay.trace &&
                         full.stats.u == overlay.stats.u &&
                         full.stats.smax == overlay.stats.smax;

  const double search_ratio =
      bytes_per_probe(overlay.report) == 0.0
          ? 0.0
          : bytes_per_probe(full.report) / bytes_per_probe(overlay.report);
  std::printf("search full:    %6.2fs  %llu probes, %llu frame bytes "
              "(%.0f bytes/probe, %llu full loads)\n",
              full.seconds,
              static_cast<unsigned long long>(probes_of(full.report)),
              static_cast<unsigned long long>(full.report.probe_frame_bytes),
              bytes_per_probe(full.report),
              static_cast<unsigned long long>(full.report.probe_full_loads));
  std::printf(
      "search overlay: %6.2fs  %llu probes, %llu frame bytes "
      "(%.0f bytes/probe, %llu overlay loads)\n",
      overlay.seconds,
      static_cast<unsigned long long>(probes_of(overlay.report)),
      static_cast<unsigned long long>(overlay.report.probe_frame_bytes),
      bytes_per_probe(overlay.report),
      static_cast<unsigned long long>(overlay.report.probe_overlay_loads));
  std::printf("search bytes-per-probe ratio (full/overlay): %.1fx\n",
              search_ratio);
  std::printf("bit-identical: %s\n", identical ? "yes" : "NO");

  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kBenchProbeOverlay);
  w.field("circuit", circuit);
  w.field("identical", identical);
  w.field("bytes_per_probe_ratio", local_ratio);
  w.field("search_bytes_per_probe_ratio", search_ratio);
  w.key("local");
  w.begin_object();
  w.field("probes", sweep_on.probes);
  write_sweep(w, "full", sweep_off);
  write_sweep(w, "overlay", sweep_on);
  w.end_object();
  write_mode(w, "full", full);
  write_mode(w, "overlay", overlay);
  w.end_object();
  std::ofstream out("BENCH_probe_overlay_compare.json");
  out << w.take() << "\n";
  std::printf("wrote BENCH_probe_overlay_compare.json\n");

  return identical ? 0 : 1;
}
