// Reproduces the final experiment of Section IV: instead of targeted
// resynthesis, simply remove the seven cells with the largest internal
// fault counts from the library and synthesize the whole block with the
// rest. The paper reports critical path delays of 130%/137% and power of
// 109% for sparc_ifu / sparc_fpu, versus the proposed procedure's <=105%
// under the same floorplan -- i.e. naive library restriction does not
// maintain the design constraints.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/netlist/stats.hpp"

using namespace dfmres;
using namespace dfmres::bench;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchObservability obs("ablation_restricted_lib");
  const auto circuits = selected_circuits({"sparc_ifu", "sparc_fpu"});
  std::printf("==== Ablation: whole-library restriction vs procedure ====\n");
  std::printf("%-10s %-22s %8s %8s %8s %8s\n", "Circuit", "variant", "U",
              "Cov", "Delay", "Power");

  for (const auto& name : circuits) {
    DesignFlow flow(osu018_library(), bench_flow_options());
    const Netlist rtl = build_benchmark(name).value();
    const FlowState original = flow.run_initial(rtl).value();
    obs.absorb(original.atpg.counters);
    const StateStats so = stats_of(original);
    std::printf("%-10s %-22s %8zu %7.2f%% %8s %8s\n", name.c_str(),
                "original", so.u, 100.0 * so.coverage, "100%", "100%");

    // Naive restriction: ban the 7 cells with the most internal faults
    // everywhere and rebuild the block from scratch in the same
    // floorplan-sizing discipline.
    {
      const auto order = flow.cells_by_internal_faults();
      std::vector<bool> banned(flow.target().num_cells(), false);
      std::string names;
      for (std::size_t i = 0; i < order.size() && i < 7; ++i) {
        banned[order[i].value()] = true;
        names += flow.target().cell(order[i]).name + " ";
      }
      DesignFlow restricted_flow(osu018_library(), bench_flow_options());
      // Rebuild with the restricted subset by re-running the initial flow
      // on a netlist mapped under the ban.
      MapOptions mo;
      mo.banned = banned;
      const auto& slib = rtl.library();
      const auto pin = [&](const char* s, const char* d) {
        if (auto sid = slib.find(s)) {
          if (auto did = flow.target().find(d)) {
            mo.fixed_map.emplace(sid->value(), *did);
          }
        }
      };
      pin("DFF", "DFFPOSX1");
      // FA/HA macros are among the banned cells: no pinning, they get
      // decomposed like everything else.
      auto mapped = technology_map(rtl, osu018_library(), mo);
      if (!mapped) {
        std::printf("%-10s %-22s mapping failed\n", "", "restricted-lib");
      } else {
        // Same floorplan as the original design (paper: "completed the
        // layouts with the same floorplans").
        Floorplan plan = original.placement.plan;
        if (!plan.fits(*mapped)) {
          // The paper's tools squeezed it in; our row packer needs the
          // real area, so grow rows minimally and report the overflow.
          while (!plan.fits(*mapped)) ++plan.rows;
          std::printf("  note: %s does not fit the original floorplan; "
                      "rows %d -> %d\n",
                      "restricted-lib netlist", original.placement.plan.rows,
                      plan.rows);
        }
        const Placement placement = global_place(*mapped, plan, {});
        const RoutingResult routes = route(*mapped, placement, {});
        const TimingPower timing = analyze_timing_power(*mapped, routes, {});
        const FaultUniverse universe =
            extract_dfm_faults(*mapped, placement, routes, flow.udfm());
        AtpgOptions atpg_options = bench_flow_options().atpg;
        atpg_options.generate_tests = false;
        const AtpgResult atpg =
            run_atpg(*mapped, universe, flow.udfm(), atpg_options, nullptr);
        std::printf("%-10s %-22s %8zu %7.2f%% %7.2f%% %7.2f%%   (banned: %s)\n",
                    "", "restricted-lib", atpg.num_undetectable,
                    100.0 * atpg.coverage(universe.size()),
                    100.0 * timing.critical_delay /
                        original.timing.critical_delay,
                    100.0 * timing.total_power() /
                        original.timing.total_power(),
                    names.c_str());
      }
    }

    // The proposed procedure on the same block.
    {
      const ResynthesisResult result =
          resynthesize(flow, original, bench_resyn_options()).value();
      const StateStats sr = stats_of(result.state);
      std::printf("%-10s %-22s %8zu %7.2f%% %7.2f%% %7.2f%%   (q=%d)\n", "",
                  "proposed procedure", sr.u, 100.0 * sr.coverage,
                  100.0 * sr.delay / so.delay, 100.0 * sr.power / so.power,
                  result.report.q_used);
    }
  }
  return 0;
}
