// Throughput of the SimWord fault-simulation kernels against a
// STREAM-style memory-bandwidth roofline. Builds one large synthetic
// mapped block, then for every requestable kernel mode (scalar,
// portable 4/8-word, AVX2, AVX-512, auto) measures
//   - full-load throughput: good-machine materialization of a fixed
//     pattern set, reported as GB/s of frame bytes written, and
//   - detect throughput: fault-classification lanes per second over a
//     fixed excitation list,
// verifying along the way that every mode's detection masks are
// bit-identical per 64-lane group to the scalar kernel's (the bench
// exits non-zero on any divergence). Writes
// `BENCH_simd_kernel.json` (schema dfmres-bench-simd-kernel-v1).
//
// Overrides: DFMRES_BENCH_REPEATS=N takes best-of-N (default 2);
// DFMRES_BENCH_PATTERNS / DFMRES_BENCH_GATES resize the workload.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>
#include "src/core/schemas.hpp"

#include "bench/bench_util.hpp"
#include "src/atpg/excitation.hpp"
#include "src/atpg/fault_sim.hpp"
#include "src/sim/sim_word.hpp"
#include "src/sim/simd_dispatch.hpp"
#include "src/util/rng.hpp"

using namespace dfmres;
using namespace dfmres::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

/// STREAM-style triad (c = a + 3b over uint64 arrays far larger than
/// LLC): the measured memory bandwidth the frame-materialization loads
/// are rooflined against. Counts 24 bytes per element (two reads plus
/// one write), the STREAM convention.
double measure_triad_gbs() {
  const std::size_t n = 1u << 22;  // 3 x 32 MiB
  std::vector<std::uint64_t> a(n, 1), b(n, 2), c(n, 0);
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + 3 * b[i];
    const double s = seconds_since(t0);
    best = std::max(best, 24.0 * static_cast<double>(n) / s / 1e9);
    a[rep] = c[rep];  // defeat dead-code elimination across reps
  }
  return best;
}

struct ModeRun {
  SimdMode mode = SimdMode::kScalar;
  std::string kernel;
  int words = 1;
  double load_seconds = 0.0;
  double load_gbs = 0.0;
  double detect_seconds = 0.0;
  double detect_lanes_per_sec = 0.0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchObservability obs("simd_kernel");
  const int repeats = [] {
    const char* env = std::getenv("DFMRES_BENCH_REPEATS");
    return env ? std::max(1, std::atoi(env)) : 2;
  }();
  const std::size_t num_gates = env_size("DFMRES_BENCH_GATES", 20000);
  const std::size_t num_patterns = env_size("DFMRES_BENCH_PATTERNS", 8192);

  // One synthetic mapped block shared by every mode: 128 PIs, a mixed
  // random cell soup, the newest 32 nets as POs.
  const auto library = osu018_library();
  Netlist nl(library, "simd_bench");
  Rng rng(0x51D0);
  std::vector<NetId> nets;
  for (int i = 0; i < 128; ++i) nets.push_back(nl.add_primary_input());
  const char* kCells[] = {"NAND2X1", "NOR2X1", "XOR2X1",
                          "AOI22X1", "INVX1",  "AND2X2"};
  for (std::size_t i = 0; i < num_gates; ++i) {
    const CellId cell = library->require(kCells[rng.below(6)]);
    const CellSpec& spec = library->cell(cell);
    std::vector<NetId> fanins;
    for (int j = 0; j < spec.num_inputs; ++j) {
      fanins.push_back(nets[nets.size() - 1 -
                            rng.below(std::min<std::size_t>(nets.size(), 16))]);
    }
    nets.push_back(nl.gate(nl.add_gate(cell, fanins)).outputs[0]);
  }
  for (int i = 0; i < 32; ++i) nl.mark_primary_output(nets[nets.size() - 1 - i]);
  const CombView view = CombView::build(nl);

  std::vector<TestPattern> tests(num_patterns);
  for (TestPattern& t : tests) {
    t.frame0 = random_sim_frame(view.sources.size(), rng);
    t.frame1 = random_sim_frame(view.sources.size(), rng);
  }
  std::vector<Excitation> excs;
  for (int i = 0; i < 64; ++i) {
    Excitation exc;
    exc.victim = nets[128 + rng.below(nets.size() - 128)];
    exc.faulty_value = false;
    excs.push_back(exc);
    exc.faulty_value = true;
    excs.push_back(exc);
  }

  const double triad_gbs = measure_triad_gbs();
  std::printf("==== SimWord kernel bench: %zu gates, %zu patterns, %zu excitations ====\n",
              num_gates, num_patterns, excs.size());
  std::printf("STREAM triad roofline: %.2f GB/s\n", triad_gbs);

  const SimdMode kModes[] = {SimdMode::kScalar,    SimdMode::kPortable4,
                             SimdMode::kPortable8, SimdMode::kAvx2,
                             SimdMode::kAvx512,    SimdMode::kAuto};
  const std::size_t total_groups = (num_patterns + 63) / 64;
  // Reference detection bits (global 64-lane groups) from the scalar
  // kernel, for the bit-identity cross-check.
  std::vector<std::uint64_t> reference;
  std::vector<ModeRun> runs;
  bool all_identical = true;

  for (const SimdMode mode : kModes) {
    const SimdMode saved = global_simd_mode();
    set_global_simd_mode(mode);
    FaultSimulator sim(nl, view);
    set_global_simd_mode(saved);

    ModeRun run;
    run.mode = mode;
    run.kernel = sim.kernel_name();
    run.words = sim.words();
    run.load_seconds = std::numeric_limits<double>::max();
    run.detect_seconds = std::numeric_limits<double>::max();
    const std::size_t cap = static_cast<std::size_t>(sim.lane_capacity());

    std::vector<std::uint64_t> bits(excs.size() * total_groups, 0);
    for (int rep = 0; rep < repeats; ++rep) {
      const std::uint64_t bytes0 = sim.frame_bytes_materialized();
      double load_s = 0.0, detect_s = 0.0;
      for (std::size_t first = 0; first < num_patterns; first += cap) {
        const std::size_t count = std::min(cap, num_patterns - first);
        const auto t0 = Clock::now();
        sim.load(tests, first, count);
        load_s += seconds_since(t0);
        const auto t1 = Clock::now();
        const std::size_t base = first / 64;
        for (std::size_t e = 0; e < excs.size(); ++e) {
          std::uint64_t m[kMaxSimWords] = {};
          sim.detect_masks({&excs[e], 1}, m);
          for (int g = 0; g < sim.groups(); ++g) {
            bits[e * total_groups + base + static_cast<std::size_t>(g)] = m[g];
          }
        }
        detect_s += seconds_since(t1);
      }
      if (load_s < run.load_seconds) {
        run.load_seconds = load_s;
        run.load_gbs = static_cast<double>(sim.frame_bytes_materialized() -
                                           bytes0) /
                       load_s / 1e9;
      }
      if (detect_s < run.detect_seconds) {
        run.detect_seconds = detect_s;
        run.detect_lanes_per_sec = static_cast<double>(excs.size()) *
                                   static_cast<double>(num_patterns) /
                                   detect_s;
      }
    }

    if (reference.empty()) {
      reference = bits;
    } else if (bits != reference) {
      run.identical = false;
      all_identical = false;
    }
    std::printf(
        "%-9s -> %-9s W=%d  load %.3fs (%.2f GB/s, %.0f%% of triad)  "
        "detect %.3fs (%.1fM lanes/s)  %s\n",
        simd_mode_name(mode), run.kernel.c_str(), run.words, run.load_seconds,
        run.load_gbs, 100.0 * run.load_gbs / triad_gbs, run.detect_seconds,
        run.detect_lanes_per_sec / 1e6,
        run.identical ? "identical" : "DIVERGES");
    runs.push_back(std::move(run));
  }

  const double scalar_load = runs.front().load_seconds;
  const double scalar_detect = runs.front().detect_seconds;
  const auto& widest = runs[5];  // auto
  std::printf("auto (%s) speedup vs scalar: load %.2fx, detect %.2fx\n",
              widest.kernel.c_str(), scalar_load / widest.load_seconds,
              scalar_detect / widest.detect_seconds);
  std::printf("masks bit-identical across modes: %s\n",
              all_identical ? "yes" : "NO (BUG)");

  std::ofstream json("BENCH_simd_kernel.json");
  json << "{\n  \"schema\": \"" << dfmres::schemas::kBenchSimdKernel
       << "\",\n";
  json << "  \"gates\": " << num_gates << ",\n";
  json << "  \"patterns\": " << num_patterns << ",\n";
  json << "  \"excitations\": " << excs.size() << ",\n";
  json << "  \"triad_gbs\": " << triad_gbs << ",\n";
  json << "  \"identical_masks\": " << (all_identical ? "true" : "false")
       << ",\n";
  json << "  \"auto_load_speedup\": " << scalar_load / widest.load_seconds
       << ",\n";
  json << "  \"auto_detect_speedup\": " << scalar_detect / widest.detect_seconds
       << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ModeRun& r = runs[i];
    json << "    {\"mode\": \"" << simd_mode_name(r.mode) << "\", \"kernel\": \""
         << r.kernel << "\", \"words\": " << r.words
         << ", \"load_seconds\": " << r.load_seconds
         << ", \"load_gbs\": " << r.load_gbs
         << ", \"detect_seconds\": " << r.detect_seconds
         << ", \"detect_lanes_per_sec\": " << r.detect_lanes_per_sec
         << ", \"load_speedup_vs_scalar\": " << scalar_load / r.load_seconds
         << ", \"detect_speedup_vs_scalar\": "
         << scalar_detect / r.detect_seconds
         << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
         << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_simd_kernel.json\n");
  return all_identical ? 0 : 1;
}
