// Design-choice ablation called out in Section III-B: the phase-1
// termination target p1 ("we experimented with different values of p1;
// p1 = 1% balances them well"). Sweeps p1 and reports how the final
// largest cluster, total U, and runtime respond.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace dfmres;
using namespace dfmres::bench;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchObservability obs("ablation_p1");
  const auto circuits = selected_circuits({"tv80"});
  for (const auto& name : circuits) {
    std::printf("==== p1 sweep: %s ====\n", name.c_str());
    std::printf("%8s %8s %8s %10s %9s %8s\n", "p1", "U", "Smax", "%Smax_all",
                "accepts", "seconds");
    for (const double p1 : {0.005, 0.01, 0.02}) {
      DesignFlow flow(osu018_library(), bench_flow_options());
      const FlowState original = flow.run_initial(build_benchmark(name).value()).value();
      ResynthesisOptions options = bench_resyn_options();
      options.p1 = p1;
      const auto t0 = std::chrono::steady_clock::now();
      const ResynthesisResult result = resynthesize(flow, original, options).value();
      obs.absorb(flow.atpg_totals());
      obs.absorb(result.report);
      obs.set_final(result.state);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      int accepts = 0;
      for (const auto& r : result.report.trace) accepts += r.accepted;
      std::printf("%7.2f%% %8zu %8zu %9.2f%% %9d %8.1f\n", 100.0 * p1,
                  result.state.num_undetectable(), result.state.smax(),
                  100.0 * result.state.smax_fraction(), accepts, seconds);
    }
  }
  return 0;
}
