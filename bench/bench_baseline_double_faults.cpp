// The alternative the paper argues against (Section I, refs [14][15]):
// keep the netlist and instead add tests for double faults (undetectable
// fault + adjacent detectable fault) to shore up the coverage of the
// uncovered subcircuits. The paper's point: for DFM-related clusters the
// required number of additional patterns grows the test set
// unacceptably, while resynthesis removes the root cause at an
// essentially flat test count.
//
// This bench quantifies both sides on the same blocks.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.hpp"
#include "src/atpg/double_fault.hpp"

using namespace dfmres;
using namespace dfmres::bench;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchObservability obs("baseline_double_faults");
  std::printf("==== Baseline: double-fault test augmentation vs "
              "resynthesis ====\n");
  std::printf("%-10s %6s %8s %10s %10s %10s | %9s %7s\n", "Circuit", "T",
              "2f-tgts", "T-covered", "extraT@95", "T-growth", "resyn-T",
              "resyn-U");

  for (const auto& name : selected_circuits({"tv80", "sparc_tlu"})) {
    DesignFlow flow(osu018_library(), bench_flow_options());
    const FlowState original = flow.run_initial(build_benchmark(name).value()).value();

    // Double-fault targets around the undetectable clusters.
    const auto targets = enumerate_double_faults(
        original.netlist, original.universe, original.atpg.status);
    const auto base_cov = evaluate_double_fault_coverage(
        original.netlist, original.universe, flow.udfm(), targets,
        original.atpg.tests);

    // Augment the test set toward 95% double-fault coverage.
    std::vector<TestPattern> augmented = original.atpg.tests;
    const std::size_t added = augment_tests_for_double_faults(
        original.netlist, original.universe, flow.udfm(), targets,
        /*goal=*/0.95, /*max_new=*/4096, /*seed=*/17, &augmented);

    // The proposed alternative: resynthesize.
    const ResynthesisResult resyn =
        resynthesize(flow, original, bench_resyn_options()).value();
    obs.absorb(flow.atpg_totals());
    obs.absorb(resyn.report);
    obs.set_final(resyn.state);

    std::printf("%-10s %6zu %8zu %8zu/%zu %10zu %9.1f%% | %9zu %7zu\n",
                name.c_str(), original.atpg.tests.size(), targets.size(),
                base_cov.covered, base_cov.total, added,
                original.atpg.tests.empty()
                    ? 0.0
                    : 100.0 * static_cast<double>(added) /
                          static_cast<double>(original.atpg.tests.size()),
                resyn.state.atpg.tests.size(),
                resyn.state.num_undetectable());
    std::printf("           (resynthesis: U %zu -> %zu, coverage %.2f%% -> "
                "%.2f%%, T %+.1f%%)\n",
                original.num_undetectable(),
                resyn.state.num_undetectable(), 100.0 * original.coverage(),
                100.0 * resyn.state.coverage(),
                original.atpg.tests.empty()
                    ? 0.0
                    : 100.0 *
                          (static_cast<double>(resyn.state.atpg.tests.size()) /
                               static_cast<double>(
                                   original.atpg.tests.size()) -
                           1.0));
  }
  return 0;
}
